"""Persistent sorted linked list (Harris-style [31], operation-atomic).

Node layout: ``[key, next]``.  A sentinel head with key 0 anchors the
list; keys are strictly positive and strictly increasing along ``next``.

Traversal reads are tagged non-critical; the final decision nodes are
re-read critically (this is what NVTraverse persists), and all pointer
updates are critical writes.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.persist.api import PMemView
from repro.persist.structures.base import PersistedReader, PersistentSet

KEY = 0
NEXT = 1


class PersistentLinkedList(PersistentSet):
    name = "list"

    def __init__(self, heap, field_stride: int = 8) -> None:
        super().__init__(heap, field_stride)
        self._head = self._alloc(2)
        self._initialized = False

    def initialize(self, view: PMemView) -> None:
        """Write and persist the sentinel before first use."""
        view.op_begin()
        view.write(self._head.field(KEY), 0, critical=True)
        view.write(self._head.field(NEXT), 0, critical=True)
        view.flush(self._head.field(KEY))
        view.op_end()
        self._initialized = True

    # ------------------------------------------------------------- helpers
    def _field(self, base: int, index: int) -> int:
        return base + index * self.field_stride

    def _search(self, view: PMemView, key: int) -> Tuple[int, int, int]:
        """Return (prev_base, curr_base, curr_key); curr may be 0 (tail)."""
        prev = self._head.base
        curr = view.read(self._field(prev, NEXT))
        curr_key = -1
        while curr:
            curr_key = view.read(self._field(curr, KEY))
            if curr_key >= key:
                break
            prev = curr
            curr = view.read(self._field(curr, NEXT))
        # NVTraverse-style: persist the decision window
        view.read(self._field(prev, NEXT), critical=True)
        if curr:
            view.read(self._field(curr, KEY), critical=True)
        return prev, curr, curr_key

    # ------------------------------------------------------------- set API
    def insert(self, view: PMemView, key: int) -> bool:
        if key <= 0:
            raise ValueError("keys must be positive")
        view.op_begin()
        try:
            while True:
                prev, curr, curr_key = self._search(view, key)
                if curr and curr_key == key:
                    return False
                node = self._alloc(2)
                view.write(node.field(KEY), key, critical=True)
                view.write(node.field(NEXT), curr, critical=True)
                if view.cas(self._field(prev, NEXT), curr, node.base):
                    return True
        finally:
            view.op_end()

    def delete(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            while True:
                prev, curr, curr_key = self._search(view, key)
                if not curr or curr_key != key:
                    return False
                nxt = view.read(self._field(curr, NEXT), critical=True)
                if view.cas(self._field(prev, NEXT), curr, nxt):
                    return True
        finally:
            view.op_end()

    def contains(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            _, curr, curr_key = self._search(view, key)
            return bool(curr) and curr_key == key
        finally:
            view.op_end()

    # ------------------------------------------------------------ recovery
    def recover_keys(self, read: PersistedReader) -> Set[int]:
        keys: Set[int] = set()
        curr = read(self._field(self._head.base, NEXT))
        seen = set()
        while curr and curr not in seen:
            seen.add(curr)
            key = read(self._field(curr, KEY))
            if key:
                keys.add(key)
            curr = read(self._field(curr, NEXT))
        return keys
