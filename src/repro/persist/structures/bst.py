"""Persistent external binary search tree (Natarajan-Mittal-style [53]).

An *external* BST: all keys live in leaves, internal nodes only route.
Node layout: ``[key, left, right]``; a node with ``left == right == 0``
is a leaf.  Deletion splices the leaf's sibling into the grandparent.

The original algorithm tags child pointers with flag/mark bits for its
lock-free protocol.  This reproduction declares
``uses_pointer_tagging = True`` so the harness excludes the
link-and-persist filter for the BST, exactly as the paper does (§7.4:
"Link-and-Persist ... is not applicable for algorithms that make use of
unused bits for their logic (such as the BST)").
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.persist.api import PMemView
from repro.persist.structures.base import PersistedReader, PersistentSet

KEY = 0
LEFT = 1
RIGHT = 2

_INFINITE_KEY = 1 << 50  # sentinel larger than any workload key


class PersistentBst(PersistentSet):
    name = "bst"
    uses_pointer_tagging = True

    def __init__(self, heap, field_stride: int = 8) -> None:
        super().__init__(heap, field_stride)
        # root anchor: an internal node with two infinite-key leaves
        self._root = self._alloc(3)
        self._leaf_l = self._alloc(3)
        self._leaf_r = self._alloc(3)
        self._initialized = False

    def initialize(self, view: PMemView) -> None:
        view.op_begin()
        for leaf, key in ((self._leaf_l, _INFINITE_KEY - 1), (self._leaf_r, _INFINITE_KEY)):
            view.write(leaf.field(KEY), key, critical=True)
            view.write(leaf.field(LEFT), 0, critical=True)
            view.write(leaf.field(RIGHT), 0, critical=True)
        view.write(self._root.field(KEY), _INFINITE_KEY - 1, critical=True)
        view.write(self._root.field(LEFT), self._leaf_l.base, critical=True)
        view.write(self._root.field(RIGHT), self._leaf_r.base, critical=True)
        view.op_end()
        self._initialized = True

    # ------------------------------------------------------------- helpers
    def _field(self, base: int, index: int) -> int:
        return base + index * self.field_stride

    def _is_leaf(self, view: PMemView, node: int) -> bool:
        return view.read(self._field(node, LEFT)) == 0

    def _seek(self, view: PMemView, key: int) -> Tuple[int, int, int, int]:
        """(grandparent, parent, leaf, leaf_key) for *key*."""
        gparent = 0
        parent = self._root.base
        node = view.read(self._field(parent, LEFT))
        while view.read(self._field(node, LEFT)):
            gparent = parent
            parent = node
            node_key = view.read(self._field(node, KEY))
            child = LEFT if key <= node_key else RIGHT
            node = view.read(self._field(node, child))
        leaf_key = view.read(self._field(node, KEY), critical=True)
        view.read(self._field(parent, KEY), critical=True)
        return gparent, parent, node, leaf_key

    def _child_slot(self, view: PMemView, parent: int, key: int) -> int:
        parent_key = view.read(self._field(parent, KEY))
        return self._field(parent, LEFT if key <= parent_key else RIGHT)

    # ------------------------------------------------------------- set API
    def insert(self, view: PMemView, key: int) -> bool:
        if key <= 0:
            raise ValueError("keys must be positive")
        view.op_begin()
        try:
            while True:
                _, parent, leaf, leaf_key = self._seek(view, key)
                if leaf_key == key:
                    return False
                new_leaf = self._alloc(3)
                view.write(new_leaf.field(KEY), key, critical=True)
                view.write(new_leaf.field(LEFT), 0, critical=True)
                view.write(new_leaf.field(RIGHT), 0, critical=True)
                internal = self._alloc(3)
                small, big = (
                    (new_leaf.base, leaf) if key <= leaf_key else (leaf, new_leaf.base)
                )
                view.write(
                    internal.field(KEY), min(key, leaf_key), critical=True
                )
                view.write(internal.field(LEFT), small, critical=True)
                view.write(internal.field(RIGHT), big, critical=True)
                slot = self._child_slot(view, parent, key)
                if view.cas(slot, leaf, internal.base):
                    return True
        finally:
            view.op_end()

    def delete(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            while True:
                gparent, parent, leaf, leaf_key = self._seek(view, key)
                if leaf_key != key:
                    return False
                if not gparent:
                    return False  # sentinel leaves are never deleted
                # splice: grandparent adopts the leaf's sibling
                parent_key = view.read(self._field(parent, KEY))
                sibling_slot = self._field(
                    parent, RIGHT if key <= parent_key else LEFT
                )
                sibling = view.read(sibling_slot, critical=True)
                gslot = self._child_slot(view, gparent, key)
                if view.cas(gslot, parent, sibling):
                    return True
        finally:
            view.op_end()

    def contains(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            _, _, _, leaf_key = self._seek(view, key)
            return leaf_key == key
        finally:
            view.op_end()

    # ------------------------------------------------------------ recovery
    def recover_keys(self, read: PersistedReader) -> Set[int]:
        keys: Set[int] = set()
        stack = [self._root.base]
        seen = set()
        while stack:
            node = stack.pop()
            if not node or node in seen:
                continue
            seen.add(node)
            left = read(self._field(node, LEFT))
            right = read(self._field(node, RIGHT))
            if not left and not right:
                key = read(self._field(node, KEY))
                if 0 < key < _INFINITE_KEY - 1:
                    keys.add(key)
            else:
                stack.append(left)
                stack.append(right)
        return keys
