"""Persistent chained hash table [23].

A fixed array of bucket heads (one cache line apart, avoiding false
sharing between buckets) with a sorted persistent list per bucket.  Node
layout matches the linked list: ``[key, next]``.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.persist.api import PMemView
from repro.persist.structures.base import PersistedReader, PersistentSet

KEY = 0
NEXT = 1

_HASH_MULT = 0x9E3779B97F4A7C15


class PersistentHashTable(PersistentSet):
    name = "hashtable"

    def __init__(self, heap, field_stride: int = 8, num_buckets: int = 1024) -> None:
        super().__init__(heap, field_stride)
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self.line_bytes = heap.line_bytes
        self._heads_base = heap.alloc_region(num_buckets * heap.line_bytes)
        self._initialized = False

    def initialize(self, view: PMemView) -> None:
        """Zero and persist every bucket head."""
        view.op_begin()
        for bucket in range(self.num_buckets):
            head = self._head_of_bucket(bucket)
            view.write(head, 0, critical=True)
        view.op_end()
        self._initialized = True

    # ------------------------------------------------------------- helpers
    def _head_of_bucket(self, bucket: int) -> int:
        return self._heads_base + bucket * self.line_bytes

    def _head_of(self, key: int) -> int:
        return self._head_of_bucket((key * _HASH_MULT >> 13) % self.num_buckets)

    def _field(self, base: int, index: int) -> int:
        return base + index * self.field_stride

    def _search(self, view: PMemView, key: int) -> Tuple[int, int, int]:
        """(prev_slot_address, curr_base, curr_key); prev is a pointer slot."""
        slot = self._head_of(key)
        curr = view.read(slot)
        curr_key = -1
        while curr:
            curr_key = view.read(self._field(curr, KEY))
            if curr_key >= key:
                break
            slot = self._field(curr, NEXT)
            curr = view.read(slot)
        view.read(slot, critical=True)
        if curr:
            view.read(self._field(curr, KEY), critical=True)
        return slot, curr, curr_key

    # ------------------------------------------------------------- set API
    def insert(self, view: PMemView, key: int) -> bool:
        if key <= 0:
            raise ValueError("keys must be positive")
        view.op_begin()
        try:
            while True:
                slot, curr, curr_key = self._search(view, key)
                if curr and curr_key == key:
                    return False
                node = self._alloc(2)
                view.write(node.field(KEY), key, critical=True)
                view.write(node.field(NEXT), curr, critical=True)
                if view.cas(slot, curr, node.base):
                    return True
        finally:
            view.op_end()

    def delete(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            while True:
                slot, curr, curr_key = self._search(view, key)
                if not curr or curr_key != key:
                    return False
                nxt = view.read(self._field(curr, NEXT), critical=True)
                if view.cas(slot, curr, nxt):
                    return True
        finally:
            view.op_end()

    def contains(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            _, curr, curr_key = self._search(view, key)
            return bool(curr) and curr_key == key
        finally:
            view.op_end()

    # ------------------------------------------------------------ recovery
    def recover_keys(self, read: PersistedReader) -> Set[int]:
        keys: Set[int] = set()
        for bucket in range(self.num_buckets):
            curr = read(self._head_of_bucket(bucket))
            seen = set()
            while curr and curr not in seen:
                seen.add(curr)
                key = read(self._field(curr, KEY))
                if key:
                    keys.add(key)
                curr = read(self._field(curr, NEXT))
        return keys
