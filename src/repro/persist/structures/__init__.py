"""Persistent data structures of the §7.4 evaluation.

Four set implementations, mirroring the paper's benchmark suite: a sorted
linked list [31], a hash table [23], a skiplist [23] and an external
binary search tree [53].  All shared-memory traffic flows through
:class:`repro.persist.api.PMemView`, so every (policy, optimizer) pairing
of §7.4 can be applied uniformly.
"""

from repro.persist.structures.base import PersistentSet
from repro.persist.structures.linkedlist import PersistentLinkedList
from repro.persist.structures.hashtable import PersistentHashTable
from repro.persist.structures.skiplist import PersistentSkipList
from repro.persist.structures.bst import PersistentBst

STRUCTURES = {
    "list": PersistentLinkedList,
    "hashtable": PersistentHashTable,
    "skiplist": PersistentSkipList,
    "bst": PersistentBst,
}

__all__ = [
    "PersistentSet",
    "PersistentLinkedList",
    "PersistentHashTable",
    "PersistentSkipList",
    "PersistentBst",
    "STRUCTURES",
]
