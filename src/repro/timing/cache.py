"""Set-associative line-state containers for the timing model.

Same geometry/LRU behaviour as the cycle model's arrays, but keyed by line
address and storing model-level records instead of SRAM contents.  The
set-associative capacity is what makes FliT's auxiliary tables *cost*
something here (Figure 16): their lines evict workload lines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.sim.config import CacheGeometry

R = TypeVar("R")


class LineCache(Generic[R]):
    """LRU set-associative map: line address -> record."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List["OrderedDict[int, R]"] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self._resident = 0  # total lines, so __len__ skips the per-set sum

    def _set_of(self, address: int) -> "OrderedDict[int, R]":
        return self._sets[self.geometry.set_index(address)]

    def get(self, address: int) -> Optional[R]:
        return self._set_of(address).get(address)

    def touch(self, address: int) -> None:
        self._set_of(address).move_to_end(address)

    def put(self, address: int, record: R) -> Optional[Tuple[int, R]]:
        """Insert (MRU); return the evicted (address, record) if the set spilled."""
        bucket = self._set_of(address)
        if address not in bucket:
            self._resident += 1
        bucket[address] = record
        bucket.move_to_end(address)
        if len(bucket) > self.geometry.ways:
            self._resident -= 1
            return bucket.popitem(last=False)
        return None

    def remove(self, address: int) -> Optional[R]:
        record = self._set_of(address).pop(address, None)
        if record is not None:
            self._resident -= 1
        return record

    def __contains__(self, address: int) -> bool:
        return address in self._set_of(address)

    def __len__(self) -> int:
        return self._resident

    def items(self) -> Iterator[Tuple[int, R]]:
        for bucket in self._sets:
            yield from bucket.items()
