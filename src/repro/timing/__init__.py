"""Functional-with-timing memory hierarchy for throughput experiments.

The cycle-level model in :mod:`repro.uarch` is faithful but too slow in
Python for the millions of data-structure operations behind Figures 14-16.
This package provides a *timing model*: the same MESI + skip-bit state
machine at line granularity, with per-access latency accounting instead of
per-cycle simulation, plus a virtual-time scheduler that interleaves
simulated threads by their local clocks.

The model preserves what those figures measure: hit/miss behaviour of
set-associative L1s and a shared inclusive L2 (so FliT's metadata tables
contend for cache space, Figure 16), coherence transfer costs between
threads, asynchronous writeback latency hidden until the next fence, and
Skip It's L1-level drop of redundant writebacks.
"""

from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem, ThreadCtx
from repro.timing.scheduler import VirtualTimeScheduler

__all__ = ["TimingParams", "TimingSystem", "ThreadCtx", "VirtualTimeScheduler"]
