"""The functional-with-timing memory system.

Each simulated thread owns a :class:`ThreadCtx` (its virtual clock plus its
outstanding asynchronous writebacks).  All architectural state lives in
:class:`TimingSystem`:

* ``arch`` — the architecturally-current value of every written word;
* per-thread L1 state (permission, dirty, skip bit) in set-associative
  LRU caches;
* shared inclusive L2 state (dirty bit, full-map directory, and the word
  values its copy of the line holds);
* ``persisted`` — what main memory (the persistence domain) holds; a
  simulated crash keeps exactly this.

Writeback semantics follow §4: a CBO.X snapshots the line's words at issue
time into the persistence domain (writes *before* the writeback are
covered, later writes are not), completes asynchronously after a latency
that depends on where dirty data was found, and fences wait for all of the
issuing thread's outstanding writebacks.  Skip It (§6) drops a CBO.X at
the L1 for ``cbo_skip`` cycles when the line hits clean with the skip bit
set; the skip bit is set on fills from a clean L2 (GrantData) and cleared
on fills from a dirty L2 (GrantDataDirty), on re-dirtying stores, and on
dirty-data probes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.coherence.directory import DirectoryEntry
from repro.sim.stats import StatCounter
from repro.timing.cache import LineCache
from repro.timing.params import TimingParams
from repro.tilelink.permissions import Perm


@dataclass
class L1Rec:
    perm: Perm
    dirty: bool = False
    skip: bool = False


@dataclass
class L2Rec:
    dirty: bool = False
    directory: DirectoryEntry = field(default_factory=DirectoryEntry)
    values: Dict[int, int] = field(default_factory=dict)  # this copy's words


@dataclass
class L3Rec:
    """Victim-L3 record (optional deeper hierarchy, §7.4)."""

    dirty: bool = False
    values: Dict[int, int] = field(default_factory=dict)


@dataclass
class InFlightWriteback:
    """One asynchronous DRAM write travelling to the persistence domain.

    A CBO.X snapshots the line's words at issue time (§4) but the bytes
    only land in DRAM when the writeback completes, ``done`` cycles into
    the issuing thread's virtual clock.  A crash before ``done`` loses the
    payload — exactly the window the paper's fence exists to close.
    """

    tid: int
    done: int  # completion time on the issuing thread's clock
    line: int
    values: Dict[int, int]  # words snapshotted at issue


class ThreadCtx:
    """One simulated hardware thread: clock + outstanding writebacks."""

    def __init__(self, system: "TimingSystem", tid: int) -> None:
        self.system = system
        self.tid = tid
        self.now = 0
        self.outstanding: Deque[int] = deque()  # writeback completion times
        self.ops = 0
        #: cycles the most recent fence spent draining writebacks (pure
        #: bookkeeping for blame attribution; never read by the model)
        self.last_fence_waited = 0

    # convenience wrappers --------------------------------------------------
    def load(self, address: int) -> int:
        return self.system.load(self, address)

    def store(self, address: int, value: int) -> None:
        self.system.store(self, address, value)

    def cas(self, address: int, expected: int, new: int) -> bool:
        return self.system.cas(self, address, expected, new)

    def clean(self, address: int) -> None:
        self.system.cbo(self, address, invalidate=False)

    def flush(self, address: int) -> None:
        self.system.cbo(self, address, invalidate=True)

    def clean_range(self, address: int, length: int, wait: bool = False) -> None:
        self.system.cbo_range(self, address, length, invalidate=False, wait=wait)

    def flush_range(self, address: int, length: int, wait: bool = False) -> None:
        self.system.cbo_range(self, address, length, invalidate=True, wait=wait)

    def await_writebacks(self) -> None:
        self.system.await_writebacks(self)

    def fence(self) -> None:
        self.system.fence(self)


class TimingSystem:
    """Shared memory hierarchy for N virtual-time threads."""

    def __init__(self, params: Optional[TimingParams] = None) -> None:
        self.params = params or TimingParams()
        p = self.params
        self.l1s: List[LineCache[L1Rec]] = [
            LineCache(p.l1) for _ in range(p.num_threads)
        ]
        self.l2: LineCache[L2Rec] = LineCache(p.l2)
        self.l3: Optional[LineCache[L3Rec]] = (
            LineCache(p.l3) if p.l3 is not None else None
        )
        self.arch: Dict[int, int] = {}
        self.persisted: Dict[int, int] = {}
        self._line_words: Dict[int, Set[int]] = {}
        self.threads = [ThreadCtx(self, tid) for tid in range(p.num_threads)]
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach_timing
        #: DRAM writes still in flight; a crash drops the unfinished ones
        self.in_flight: List[InFlightWriteback] = []
        #: per-line DRAM writeback counts (differential fuzzing oracle)
        self.wb_lines: Dict[int, int] = {}
        #: test-only fault injection: names of re-introduced known bugs
        #: (see :mod:`repro.verify.mutants`); empty in production use
        self.mutants: Set[str] = set()

    # ------------------------------------------------------------- helpers
    def line_of(self, address: int) -> int:
        return address - (address % self.params.line_bytes)

    def _words_of(self, line: int) -> Set[int]:
        return self._line_words.get(line, set())

    def _arch_line(self, line: int) -> Dict[int, int]:
        return {w: self.arch[w] for w in self._words_of(line) if w in self.arch}

    def _persisted_line(self, line: int) -> Dict[int, int]:
        # a DRAM fetch is ordered after any pending write of the same line
        # at the memory controller, so settle those first
        self._settle_line(line)
        return {
            w: self.persisted[w] for w in self._words_of(line) if w in self.persisted
        }

    # ------------------------------------------------- in-flight writebacks
    def _count_wb(self, line: int) -> None:
        self.wb_lines[line] = self.wb_lines.get(line, 0) + 1

    def _record_wb(self, ctx: ThreadCtx, line: int, values: Dict[int, int],
                   done: int) -> None:
        """Track one asynchronous DRAM write; it lands when settled."""
        self.in_flight.append(
            InFlightWriteback(tid=ctx.tid, done=done, line=line, values=dict(values))
        )
        self._count_wb(line)

    def _settle_line(self, line: int) -> None:
        remaining = []
        for wb in self.in_flight:
            if wb.line == line:
                self.persisted.update(wb.values)
            else:
                remaining.append(wb)
        self.in_flight = remaining

    def _settle_thread(self, tid: int) -> None:
        """Land every in-flight write of *tid* (the fence waited for them).

        The memory controller serializes same-line writes in arrival
        order, so retiring one of *tid*'s writes also retires every
        same-line write that arrived before it — otherwise a stale
        payload could land after a newer one and revert the persistence
        domain.
        """
        last: Dict[int, int] = {}
        for i, wb in enumerate(self.in_flight):
            if wb.tid == tid:
                last[wb.line] = i
        remaining = []
        for i, wb in enumerate(self.in_flight):
            if i <= last.get(wb.line, -1):
                self.persisted.update(wb.values)
            else:
                remaining.append(wb)
        self.in_flight = remaining

    def persisted_image(self, at: Optional[int] = None) -> Dict[int, int]:
        """The words DRAM would hold if power failed right now.

        Non-destructive counterpart of :meth:`crash`: in-flight writebacks
        whose completion time has passed (``done <= at``, or the issuing
        thread's clock when *at* is ``None``) are included; younger ones
        are the mid-writeback window a crash would lose.
        """
        image = dict(self.persisted)
        horizon: Dict[int, int] = {}
        for wb in self.in_flight:
            # same-line writes complete in arrival order at the
            # controller, so a write cannot land before its predecessors
            effective = max(wb.done, horizon.get(wb.line, wb.done))
            horizon[wb.line] = effective
            deadline = at if at is not None else self.threads[wb.tid].now
            if effective <= deadline:
                image.update(wb.values)
        return image

    # ------------------------------------------------------ L2 maintenance
    def _l2_fetch(self, line: int) -> L2Rec:
        """Install *line* in L2 (from the victim L3 if present, else memory),
        inclusive-evicting on overflow."""
        l3rec = self.l3.remove(line) if self.l3 is not None else None
        if l3rec is not None:
            rec = L2Rec(dirty=l3rec.dirty, values=dict(l3rec.values))
            self.stats.inc("l3_hits")
        else:
            rec = L2Rec(dirty=False, values=self._persisted_line(line))
        evicted = self.l2.put(line, rec)
        if evicted is not None:
            self._l2_evict(*evicted)
        return rec

    def _fill_cost(self, line: int) -> int:
        """Latency of an L2 miss: L3 hit beats the DRAM round trip."""
        if self.l3 is not None and line in self.l3:
            return self.params.l3_hit
        return self.params.mem_access

    def _l2_evict(self, line: int, rec: L2Rec) -> None:
        """Inclusive eviction: revoke L1 copies, write back if dirty."""
        for tid in list(rec.directory.sharers):
            l1rec = self.l1s[tid].get(line)
            if l1rec is not None:
                if l1rec.dirty:
                    rec.values.update(self._arch_line(line))
                    rec.dirty = True
                self.l1s[tid].remove(line)
        if self.l3 is not None:
            spilled = self.l3.put(line, L3Rec(dirty=rec.dirty, values=rec.values))
            if spilled is not None:
                victim_line, victim = spilled
                if victim.dirty:
                    self.persisted.update(victim.values)
                    self._count_wb(victim_line)
                    self.stats.inc("l3_evict_writebacks")
            self.stats.inc("l2_evict_to_l3")
        elif rec.dirty:
            self.persisted.update(rec.values)
            self._count_wb(line)
            self.stats.inc("l2_evict_writebacks")
        else:
            self.stats.inc("l2_evict_drops")

    def _merge_owner_dirty(self, line: int, rec: L2Rec, keep_owner: bool) -> bool:
        """Pull dirty data from the TRUNK owner (if any) into the L2 copy.

        Returns True when a probe transfer happened.  ``keep_owner`` keeps
        the owner's copy as a BRANCH (clean) reader; otherwise the copy is
        revoked.
        """
        owner = rec.directory.owner
        if owner is None:
            return False
        l1rec = self.l1s[owner].get(line)
        transferred = False
        if l1rec is not None:
            if l1rec.dirty:
                rec.values.update(self._arch_line(line))
                rec.dirty = True
                l1rec.dirty = False
                l1rec.skip = False  # dirty above us: not persisted (§6.2)
                transferred = True
            if keep_owner:
                l1rec.perm = Perm.BRANCH
            else:
                self.l1s[owner].remove(line)
        rec.directory.downgrade(owner, Perm.BRANCH if keep_owner else Perm.NONE)
        return transferred

    def _revoke_sharers(self, line: int, rec: L2Rec, keep: Optional[int]) -> None:
        for tid in list(rec.directory.sharers):
            if tid == keep:
                continue
            l1rec = self.l1s[tid].get(line)
            if l1rec is not None:
                if l1rec.dirty:
                    rec.values.update(self._arch_line(line))
                    rec.dirty = True
                self.l1s[tid].remove(line)
            rec.directory.downgrade(tid, Perm.NONE)

    # ------------------------------------------------------------ accesses
    def _fill(self, ctx: ThreadCtx, line: int, want_write: bool) -> int:
        """L1 miss path; returns the access cost."""
        rec = self.l2.get(line)
        if rec is None:
            cost = self._fill_cost(line)
            rec = self._l2_fetch(line)
            self.stats.inc("mem_fills")
        else:
            cost = self.params.l2_hit
            self.l2.touch(line)
            self.stats.inc("l2_hits")
        if want_write:
            if self._merge_owner_dirty(line, rec, keep_owner=False):
                cost += self.params.probe_extra
            self._revoke_sharers(line, rec, keep=ctx.tid)
            perm = Perm.TRUNK
        else:
            if self._merge_owner_dirty(line, rec, keep_owner=True):
                cost += self.params.probe_extra
            perm = Perm.TRUNK if rec.directory.idle else Perm.BRANCH
        # GrantData vs GrantDataDirty decides the skip bit (§6.1)
        skip = self.params.skip_it and (
            not rec.dirty or "skip_dirty_grant" in self.mutants
        )
        l1rec = L1Rec(perm=perm, dirty=want_write, skip=skip and not want_write)
        evicted = self.l1s[ctx.tid].put(line, l1rec)
        if evicted is not None:
            self._l1_evict(ctx.tid, *evicted)
            cost += 5
        rec.directory.grant(ctx.tid, perm)
        return cost

    def _l1_evict(self, tid: int, line: int, l1rec: L1Rec) -> None:
        rec = self.l2.get(line)
        if rec is None:  # pragma: no cover - inclusivity guarantees presence
            raise RuntimeError("L1 line absent from inclusive L2")
        if l1rec.dirty:
            rec.values.update(self._arch_line(line))
            rec.dirty = True
            self.stats.inc("l1_evict_writebacks")
        rec.directory.downgrade(tid, Perm.NONE)

    def load(self, ctx: ThreadCtx, address: int) -> int:
        line = self.line_of(address)
        self.stats.inc("loads")
        l1rec = self.l1s[ctx.tid].get(line)
        if l1rec is not None:
            self.l1s[ctx.tid].touch(line)
            ctx.now += self.params.l1_hit
            self.stats.inc("l1_hits")
        else:
            ctx.now += self._fill(ctx, line, want_write=False)
            self.stats.inc("l1_misses")
        return self.arch.get(address, 0)

    def store(self, ctx: ThreadCtx, address: int, value: int) -> None:
        line = self.line_of(address)
        self.stats.inc("stores")
        l1rec = self.l1s[ctx.tid].get(line)
        if l1rec is not None and l1rec.perm is Perm.TRUNK:
            self.l1s[ctx.tid].touch(line)
            ctx.now += self.params.l1_hit
            self.stats.inc("l1_hits")
        elif l1rec is not None:  # upgrade BRANCH -> TRUNK
            rec = self.l2.get(line)
            assert rec is not None
            self._revoke_sharers(line, rec, keep=ctx.tid)
            rec.directory.downgrade(ctx.tid, Perm.NONE)
            rec.directory.grant(ctx.tid, Perm.TRUNK)
            l1rec.perm = Perm.TRUNK
            ctx.now += self.params.upgrade
            self.stats.inc("upgrades")
        else:
            ctx.now += self._fill(ctx, line, want_write=True)
            self.stats.inc("l1_misses")
        l1rec = self.l1s[ctx.tid].get(line)
        assert l1rec is not None
        l1rec.dirty = True
        if "store_keeps_skip" not in self.mutants:
            l1rec.skip = False  # a dirty line is never persisted
        self.arch[address] = value
        self._line_words.setdefault(line, set()).add(address)

    def cas(self, ctx: ThreadCtx, address: int, expected: int, new: int) -> bool:
        """Compare-and-swap: acquires write permission, then swaps atomically.

        Atomicity is trivially satisfied because operations are atomic at
        the model level; the cost is a write access plus a small ALU tax.
        """
        current = self.arch.get(address, 0)
        if current != expected:
            # failed CAS still acquired the line for writing
            self.store(ctx, address, current)
            ctx.now += 2
            self.stats.inc("cas_failures")
            return False
        self.store(ctx, address, new)
        ctx.now += 2
        self.stats.inc("cas_successes")
        return True

    # ----------------------------------------------------------- writeback
    def cbo(self, ctx: ThreadCtx, address: int, invalidate: bool) -> None:
        """CBO.FLUSH (*invalidate*) / CBO.CLEAN, asynchronous per §4."""
        line = self.line_of(address)
        l1 = self.l1s[ctx.tid]
        l1rec = l1.get(line)
        # Skip It (§6.1): hit + clean + skip set => drop before the queue.
        if (
            self.params.skip_it
            and l1rec is not None
            and not l1rec.dirty
            and l1rec.skip
        ):
            ctx.now += self.params.cbo_skip
            self.stats.inc("cbo_skipped")
            if self.obs is not None:
                self.obs.emit(
                    ctx.now,
                    "timing",
                    "cbo_skipped",
                    track=f"t{ctx.tid}",
                    address=line,
                    invalidate=invalidate,
                )
            return
        ctx.now += self.params.cbo_issue
        self.stats.inc("cbo_issued")
        if self.obs is not None:
            self.obs.emit(
                ctx.now,
                "timing",
                "cbo_issued",
                track=f"t{ctx.tid}",
                address=line,
                invalidate=invalidate,
            )
        latency, payload = self._cbo_line(ctx, line, l1rec, invalidate)
        completion = self._issue_async(ctx, latency)
        self._record_or_adopt(ctx, line, payload, completion)

    def _cbo_line(
        self,
        ctx: ThreadCtx,
        line: int,
        l1rec: Optional[L1Rec],
        invalidate: bool,
    ) -> "tuple[int, Optional[Dict[int, int]]]":
        """Per-line writeback decision shared by cbo() and cbo_range().

        Applies the metadata effects (dirty bits cleared, invalidations,
        skip bit set after a clean) and returns the writeback latency
        plus the words this line carries to DRAM (``None`` when the
        hierarchy holds nothing dirty).
        """
        rec = self.l2.get(line)
        latency = self.params.cbo_l2_roundtrip
        # a deeper hierarchy lengthens every writeback's path (§7.4):
        # requests traverse the L3 on their way to the persistence domain
        l3_extra = self.params.l3_extra_writeback if self.l3 is not None else 0
        latency += l3_extra
        # words this CBO carries to DRAM; they land only when the
        # asynchronous writeback completes (see InFlightWriteback)
        payload: Optional[Dict[int, int]] = None
        if l1rec is not None and l1rec.dirty:
            # dirty in our L1: full path to DRAM
            assert rec is not None
            rec.values.update(self._arch_line(line))
            l1rec.dirty = False
            latency = self.params.cbo_dram_writeback + l3_extra
            payload = self._persist_l2(line, rec)
            self.stats.inc("cbo_dram")
        elif rec is not None and (
            rec.dirty or rec.directory.owner not in (None, ctx.tid)
        ):
            # dirty somewhere else in the hierarchy: probe/merge, then DRAM
            if self._merge_owner_dirty(line, rec, keep_owner=not invalidate):
                latency = (
                    self.params.cbo_dram_writeback
                    + self.params.probe_extra
                    + l3_extra
                )
            if rec.dirty:
                latency = max(
                    latency, self.params.cbo_dram_writeback + l3_extra
                )
                payload = self._persist_l2(line, rec)
                self.stats.inc("cbo_dram")
            else:
                self.stats.inc("cbo_l2_clean")
        else:
            # Not dirty anywhere the L2 can see — but the victim L3 may
            # hold the only dirty copy (the line lives in at most one of
            # L2/L3, so ``rec is None`` does not mean "persisted").
            l3rec = self.l3.get(line) if self.l3 is not None else None
            if "l3_dirty_clean_lost" in self.mutants and not invalidate:
                l3rec = None  # re-introduced PR 2 bug (test-only)
            if l3rec is not None and l3rec.dirty:
                payload = dict(l3rec.values)
                l3rec.dirty = False
                latency = self.params.cbo_dram_writeback + l3_extra
                self.stats.inc("cbo_dram")
                self.stats.inc("cbo_l3_dirty_writebacks")
            else:
                # persisted already: the LLC trivially skips the DRAM write
                self.stats.inc("cbo_l2_clean")
        if invalidate:
            if rec is not None:
                self._revoke_sharers(line, rec, keep=None)
                self.l2.remove(line)
            if self.l3 is not None:
                l3rec = self.l3.remove(line)
                if l3rec is not None and l3rec.dirty:
                    # flushing a line dirty only in L3 persists it
                    payload = dict(payload or {})
                    payload.update(l3rec.values)
        elif l1rec is not None:
            # after a clean the resident line is persisted (§6.2)
            l1rec.skip = self.params.skip_it
        return latency, payload

    def _record_or_adopt(
        self,
        ctx: ThreadCtx,
        line: int,
        payload: Optional[Dict[int, int]],
        completion: int,
    ) -> None:
        if payload:
            self._record_wb(ctx, line, payload, done=completion)
        else:
            # The line is clean in the hierarchy, but an earlier CBO's
            # DRAM write for it may still sit in the controller queue.
            # Same-address ordering puts this CBO's completion behind
            # those writes, so the fence that waits for *this* CBO also
            # covers them: adopt their payload under our completion.
            # Not a new DRAM write — wb_lines is deliberately untouched.
            merged: Dict[int, int] = {}
            for wb in self.in_flight:
                if wb.line == line:
                    merged.update(wb.values)
            if merged:
                self.in_flight.append(
                    InFlightWriteback(
                        tid=ctx.tid, done=completion, line=line, values=merged
                    )
                )

    def cbo_range(
        self,
        ctx: ThreadCtx,
        address: int,
        length: int,
        invalidate: bool = False,
        wait: bool = False,
    ) -> None:
        """CBO.RANGE.{CLEAN,FLUSH}: one charged multi-line sweep (SIMF-style).

        One instruction, one flush-queue entry, one ordering token: the
        issue cost is charged once, then a single range-capable FSHR
        sweeps ``[address, address + length)`` line by line.  Skip It is
        consulted per line *inside* the sweep — a filtered line costs a
        lookup (``cbo_skip``), not a writeback.  Each unfiltered line's
        payload travels as its own :class:`InFlightWriteback` with a
        staggered completion time, so a crash mid-sweep exposes every
        cursor position as a distinct window.

        With ``wait=True`` the op adopts SIMF completion semantics: the
        thread settles to the sweep's final line before continuing, so
        the whole range is one ordering token and no separate FENCE is
        needed — the caller's next instruction is ordered after every
        covered line is durable.
        """
        if length <= 0:
            raise ValueError("ranged CBO requires a positive byte length")
        line_bytes = self.params.line_bytes
        base = self.line_of(address)
        last = self.line_of(address + length - 1)
        nlines = (last - base) // line_bytes + 1
        ctx.now += self.params.cbo_issue
        self.stats.inc("cbo_range_issued")
        self.stats.inc("cbo_range_lines", nlines)
        if self.obs is not None:
            self.obs.emit(
                ctx.now,
                "timing",
                "cbo_range_issued",
                track=f"t{ctx.tid}",
                address=base,
                lines=nlines,
                invalidate=invalidate,
            )
        # the sweep occupies one FSHR: same admission rule as one CBO.X
        start = ctx.now
        if len(ctx.outstanding) >= self.params.num_fshrs:
            start = max(start, ctx.outstanding.popleft())
        # seeded mutant: the range reports done with every line at or
        # past the mid-sweep cursor unswept — their dirty data never
        # reaches DRAM (lost writes the crash sweep must catch)
        sweep_lines = nlines
        if "range_skips_unreached_lines" in self.mutants:
            sweep_lines = max(1, nlines // 2)
        cursor = start
        horizon = start
        l1 = self.l1s[ctx.tid]
        skipped = 0
        for index in range(sweep_lines):
            line = base + index * line_bytes
            l1rec = l1.get(line)
            if (
                self.params.skip_it
                and l1rec is not None
                and not l1rec.dirty
                and l1rec.skip
            ):
                # filtered inside the sweep: a lookup, not a writeback
                cursor += self.params.cbo_skip
                skipped += 1
                continue
            latency, payload = self._cbo_line(ctx, line, l1rec, invalidate)
            # the FSHR hands the line to the memory controller and
            # advances at sweep pitch; the write lands asynchronously
            # (same handoff the per-line CBO path gets from its flush
            # unit), so completions stagger by cursor position
            cursor += self.params.cbo_range_line
            done = cursor + latency
            horizon = max(horizon, done)
            self._record_or_adopt(ctx, line, payload, done)
        if skipped:
            self.stats.inc("cbo_range_line_skipped", skipped)
        if self.obs is not None:
            self.obs.emit(
                cursor,
                "timing",
                "cbo_range_done",
                track=f"t{ctx.tid}",
                address=base,
                lines=nlines,
                skipped=skipped,
            )
        # the whole sweep is one ordering token that a younger fence (or
        # an explicit SIMF completion wait) retires; it covers the last
        # line's landing, not just the scan's end
        ctx.outstanding.append(max(cursor, horizon))
        if wait:
            self.await_writebacks(ctx)

    def await_writebacks(self, ctx: ThreadCtx) -> None:
        """SIMF-style completion wait: retire *ctx*'s tokens, no FENCE.

        A CBO.RANGE is its own ordering token — waiting on its
        completion orders the caller's next instruction after every
        covered line is durable without issuing (or counting) a fence
        instruction.  The thread's clock advances to its last
        outstanding completion and those writebacks settle.
        """
        if ctx.outstanding:
            horizon = max(ctx.outstanding)
            ctx.now = max(ctx.now, horizon)
            ctx.outstanding.clear()
        self._settle_thread(ctx.tid)
        self.stats.inc("cbo_range_waits")

    def _persist_l2(self, line: int, rec: L2Rec) -> Dict[int, int]:
        """Snapshot the L2 copy for DRAM and clear its dirty bit (§4)."""
        rec.dirty = False
        if "clean_forgets_l2_dirty" in self.mutants:
            return {}  # marked clean, payload dropped (test-only bug)
        return dict(rec.values)

    def _issue_async(self, ctx: ThreadCtx, latency: int) -> int:
        """Track an asynchronous writeback, bounded by the FSHR count.

        Returns the completion time on the thread's virtual clock.
        """
        start = ctx.now
        if len(ctx.outstanding) >= self.params.num_fshrs:
            start = max(start, ctx.outstanding.popleft())
        done = start + latency
        ctx.outstanding.append(done)
        return done

    def fence(self, ctx: ThreadCtx) -> None:
        """FENCE: wait for every outstanding writeback of this thread (§5.3)."""
        waited = 0
        if "fence_forgets_writebacks" in self.mutants:
            ctx.outstanding.clear()  # test-only bug: no wait, no settle
        elif ctx.outstanding:
            horizon = max(ctx.outstanding)
            waited = max(0, horizon - ctx.now)
            ctx.now = max(ctx.now, horizon)
            ctx.outstanding.clear()
        if "fence_forgets_writebacks" not in self.mutants:
            # every writeback of this thread has now completed; its bytes
            # are in the persistence domain
            self._settle_thread(ctx.tid)
        ctx.last_fence_waited = waited
        ctx.now += self.params.fence_base
        self.stats.inc("fences")
        if self.obs is not None:
            self.obs.emit(
                ctx.now, "timing", "fence", track=f"t{ctx.tid}", waited=waited
            )

    # ------------------------------------------------------------ steady state
    def persist_all(self) -> None:
        """Declare the current state fully persisted (benchmark setup aid).

        Copies every architectural value into the persistence domain,
        clears all dirty bits, and sets every resident line's skip bit
        (with Skip It enabled).  Benchmarks call this after prefilling so
        each configuration starts from the same warm, persisted state
        instead of measuring the prefill's writeback transient.
        """
        self.in_flight.clear()  # superseded: everything lands right now
        self.persisted.update(self.arch)
        for _, rec in self.l2.items():
            rec.values.update(
                {w: self.arch[w] for w in rec.values if w in self.arch}
            )
            rec.dirty = False
        if self.l3 is not None:
            for _, l3rec in self.l3.items():
                if l3rec.dirty:
                    self.persisted.update(l3rec.values)
                    l3rec.dirty = False
        for l1 in self.l1s:
            for line, l1rec in l1.items():
                if l1rec.dirty:
                    l2rec = self.l2.get(line)
                    if l2rec is not None:
                        l2rec.values.update(self._arch_line(line))
                l1rec.dirty = False
                l1rec.skip = self.params.skip_it

    # ---------------------------------------------------------------- crash
    def crash(self, at: Optional[int] = None) -> Dict[int, int]:
        """Drop all cache state; return what survived (the persisted words).

        In-flight writebacks that completed by *at* (or by their issuing
        thread's clock when *at* is ``None``) made it to DRAM; younger
        ones are lost with the caches — the mid-writeback crash window
        the injector (:mod:`repro.verify.injector`) enumerates.
        """
        horizon: Dict[int, int] = {}
        for wb in self.in_flight:
            effective = max(wb.done, horizon.get(wb.line, wb.done))
            horizon[wb.line] = effective
            deadline = at if at is not None else self.threads[wb.tid].now
            if effective <= deadline:
                self.persisted.update(wb.values)
        self.in_flight = []
        p = self.params
        self.l1s = [LineCache(p.l1) for _ in range(p.num_threads)]
        self.l2 = LineCache(p.l2)
        if self.l3 is not None:
            self.l3 = LineCache(p.l3)
        self.arch = dict(self.persisted)
        for ctx in self.threads:
            ctx.outstanding.clear()
        self.stats.inc("crashes")
        return dict(self.persisted)
