"""Virtual-time thread interleaving.

Real threads on real cores interleave by wall clock; the timing model
interleaves by virtual clock: the runnable thread with the smallest local
``now`` executes its next operation (which advances its clock).  This
yields a deterministic, fair interleaving whose contention pattern tracks
relative operation costs — the property the throughput figures depend on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

from repro.timing.system import ThreadCtx, TimingSystem

# A workload step: perform ONE operation on the given thread context.
ThreadStep = Callable[[ThreadCtx], None]


class VirtualTimeScheduler:
    """Runs one step-function per thread until a virtual-time deadline."""

    def __init__(self, system: TimingSystem) -> None:
        self.system = system

    def run(
        self,
        steps: Sequence[ThreadStep],
        duration: int,
        warmup: int = 0,
    ) -> "ScheduleResult":
        """Interleave *steps* until every clock passes *duration*.

        Each entry of *steps* drives one thread.  Operations started before
        the deadline run to completion (clocks may overshoot slightly).
        ``warmup`` operations per thread are executed first without being
        counted (cold caches would otherwise understate throughput).
        """
        if len(steps) > len(self.system.threads):
            raise ValueError("more step functions than threads")
        contexts = self.system.threads[: len(steps)]
        for ctx, step in zip(contexts, steps):
            for _ in range(warmup):
                step(ctx)
            ctx.now = 0
            ctx.ops = 0
        heap = [(ctx.now, ctx.tid) for ctx in contexts]
        heapq.heapify(heap)
        while heap:
            now, tid = heapq.heappop(heap)
            ctx = self.system.threads[tid]
            if ctx.now >= duration:
                continue
            steps[tid](ctx)
            ctx.ops += 1
            heapq.heappush(heap, (ctx.now, tid))
        return ScheduleResult(contexts)


class ScheduleResult:
    """Aggregate outcome of one scheduled run."""

    def __init__(self, contexts: Sequence[ThreadCtx]) -> None:
        self.ops_per_thread: List[int] = [ctx.ops for ctx in contexts]
        self.elapsed = max((ctx.now for ctx in contexts), default=0)

    @property
    def total_ops(self) -> int:
        return sum(self.ops_per_thread)

    def throughput(self, clock_hz: float = 50e6) -> float:
        """Operations per second at a given core clock (paper: 50 MHz, §7.1)."""
        if self.elapsed == 0:
            return 0.0
        return self.total_ops * clock_hz / self.elapsed
