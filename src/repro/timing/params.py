"""Latency parameters of the timing model.

Calibrated against the cycle-level model of :mod:`repro.uarch` (and §7.2):
a writeback of a dirty line costs ~100 cycles end to end; an L1 hit a few
cycles; a fill from DRAM ~110.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.config import CacheGeometry


@dataclass(frozen=True)
class TimingParams:
    """Knobs of the functional-with-timing hierarchy."""

    num_threads: int = 2
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=32 * 1024, ways=8)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=512 * 1024, ways=8)
    )
    #: optional victim L3 between L2 and memory — the "deeper cache
    #: hierarchy (i.e. L3 or L4)" of §7.4, where Skip It's savings grow
    l3: Optional[CacheGeometry] = None
    skip_it: bool = True

    # access latencies (cycles)
    l1_hit: int = 3
    l2_hit: int = 25  # L1 miss, L2 hit
    mem_access: int = 110  # L1+L2 miss, DRAM fill
    l3_hit: int = 45  # L1+L2 miss served by the optional L3
    l3_extra_writeback: int = 45  # extra hop a writeback pays through L3
    probe_extra: int = 20  # extra cost when another L1 must be probed
    upgrade: int = 15  # BRANCH -> TRUNK without data transfer

    # writeback-instruction costs
    cbo_issue: int = 8  # enqueue into the flush unit (async)
    cbo_skip: int = 3  # Skip It drop at the L1: the CBO.X still travels
    # the pipeline to the metadata check, about an L1 hit's worth (§7.4)
    cbo_l2_roundtrip: int = 45  # clean line: L1->L2->ack, no DRAM write
    cbo_dram_writeback: int = 100  # dirty data travels to DRAM
    cbo_range_line: int = 4  # CBO.RANGE sweep pitch: the range FSHR hands
    # one line per pitch to the memory controller (no per-line issue)
    fence_base: int = 12  # fence cost when nothing is outstanding
    num_fshrs: int = 8  # writebacks overlapping per thread

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes
