"""Commercial-CPU writeback latency models (Figures 11-12).

We cannot run AMD EPYC 7763, Intel Xeon Gold 6238T or AWS Graviton3
silicon offline, so this package substitutes parametric latency models
encoding each platform's documented/observed behaviour (see DESIGN.md §2).
"""

from repro.xarch.models import (
    CommercialCpuModel,
    PLATFORMS,
    amd_epyc_7763,
    graviton3,
    intel_xeon_6238t,
    platform_models,
)

__all__ = [
    "CommercialCpuModel",
    "PLATFORMS",
    "amd_epyc_7763",
    "intel_xeon_6238t",
    "graviton3",
    "platform_models",
]
