"""Parametric writeback-latency models of commercial CPUs.

Each model answers: *how many cycles does it take one thread (or T
threads over disjoint regions) to write back S bytes and fence?*  The
shapes encode the behaviours §7.3 describes:

* **Intel ``clflush``** carries an implicit ordering constraint: flushes
  to different lines serialize, so latency grows with the *unpipelined*
  per-line cost — catastrophic at and above 4 KiB (Figure 11).
* **Intel ``clflushopt``/``clwb``** are weakly ordered and pipeline; only
  the final fence pays a drain.
* **AMD's ``clflush`` behaves like ``clflushopt``** — the paper notes the
  two perform nearly identically on the EPYC 7763.
* **Graviton3 ``dccivac``/``dccvac``** latency grows sub-linearly: the
  interconnect pipelines writebacks aggressively, overtaking everything
  beyond ~4 KiB.

Multi-threading divides the per-thread work; a platform-specific
efficiency factor models shared-resource contention.

The constants are calibrated to reproduce the *relative* shapes of
Figures 11-12, not any platform's absolute nanoseconds (DESIGN.md §2,
substitution 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WritebackInstruction:
    """One platform writeback instruction's cost model."""

    name: str
    setup: int  # fixed issue overhead per call site
    per_line: int  # cost of one line's writeback when not overlapped
    overlap: float  # 0..1: fraction of per-line cost hidden by pipelining
    sublinear: float = 1.0  # exponent < 1 bends the curve down (Graviton)
    fence: int = 60  # trailing barrier cost

    def latency(self, size_bytes: int, threads: int = 1, line_bytes: int = 64) -> float:
        """Cycles for *threads* threads to write back *size_bytes* total."""
        if size_bytes < line_bytes:
            size_bytes = line_bytes
        lines_total = size_bytes // line_bytes
        lines_per_thread = max(1, math.ceil(lines_total / threads))
        exposed = self.per_line * (1.0 - self.overlap)
        stream = exposed * (lines_per_thread ** self.sublinear)
        # threads contend for the shared LLC/memory path
        contention = 1.0 + 0.08 * (threads - 1)
        # thread fork/join + barrier cost: a fixed multi-thread tax that
        # dominates small sizes and mutes instruction differences there —
        # why Figure 12 only shows the Intel clflush gap above 16 KiB
        spawn = 150.0 * threads if threads > 1 else 0.0
        return self.setup + stream * contention + self.fence + spawn


@dataclass(frozen=True)
class CommercialCpuModel:
    """A platform and its writeback instruction variants."""

    name: str
    instructions: Dict[str, WritebackInstruction]

    def variants(self) -> List[str]:
        return list(self.instructions)

    def latency(
        self, instruction: str, size_bytes: int, threads: int = 1
    ) -> float:
        return self.instructions[instruction].latency(size_bytes, threads)


def intel_xeon_6238t() -> CommercialCpuModel:
    """Intel Xeon Gold 6238T: clflush serializes; clflushopt/clwb pipeline."""
    return CommercialCpuModel(
        name="Intel Xeon Gold 6238T",
        instructions={
            # implicit fencing between flushes: nothing overlaps
            "clflush": WritebackInstruction("clflush", 40, 210, overlap=0.0),
            "clflushopt": WritebackInstruction("clflushopt", 40, 140, overlap=0.93),
            "clwb": WritebackInstruction("clwb", 40, 130, overlap=0.93),
        },
    )


def amd_epyc_7763() -> CommercialCpuModel:
    """AMD EPYC 7763: clflush and clflushopt perform nearly identically."""
    return CommercialCpuModel(
        name="AMD EPYC 7763",
        instructions={
            "clflush": WritebackInstruction("clflush", 50, 150, overlap=0.90),
            "clflushopt": WritebackInstruction("clflushopt", 50, 150, overlap=0.90),
            "clwb": WritebackInstruction("clwb", 50, 140, overlap=0.90),
        },
    )


def graviton3() -> CommercialCpuModel:
    """AWS Graviton3: dccivac/dccvac latency grows sub-linearly with size."""
    return CommercialCpuModel(
        name="AWS Graviton3",
        instructions={
            "dccivac": WritebackInstruction(
                "dccivac", 80, 170, overlap=0.80, sublinear=0.72
            ),
            "dccvac": WritebackInstruction(
                "dccvac", 80, 160, overlap=0.80, sublinear=0.72
            ),
        },
    )


PLATFORMS = ("intel", "amd", "graviton3")


def platform_models() -> Dict[str, CommercialCpuModel]:
    return {
        "intel": intel_xeon_6238t(),
        "amd": amd_epyc_7763(),
        "graviton3": graviton3(),
    }
