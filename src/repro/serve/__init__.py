""":mod:`repro.serve` — a multi-tenant serving tier over the shared log.

The store subsystems below this package make one client durable fast;
this package makes the store look like a *service*: open-loop tenants
(:mod:`repro.workloads.openloop`) submit zipfian traffic at a configured
offered load, an :class:`~repro.serve.admission.AdmissionController`
sheds or delays writes when the WAL/flush backlog crosses a high-water
mark, and :class:`~repro.serve.session.Session`\\ s get read-your-writes
and monotonic reads — snapshot reads served straight from the last
published checkpoint when it covers the session's LSN floor, the live
memtable otherwise.

:class:`~repro.serve.tier.ServeTier` is the front door; figure 19
(:mod:`repro.bench.serve`) sweeps it to its saturation knee and
verify stage 7 (:mod:`repro.verify.serve`) crash-checks the session
guarantees.
"""

from repro.serve.admission import AdmissionController
from repro.serve.session import Session, SnapshotReader
from repro.serve.tier import ServeTier

__all__ = [
    "AdmissionController",
    "ServeTier",
    "Session",
    "SnapshotReader",
]
