"""Sessions (read-your-writes, monotonic reads) and checkpoint snapshot reads.

A session's guarantee is a single integer: ``lsn_floor``, the highest
LSN whose effects this session has *observed*.  Three events raise it:

* **own write** — the ticket's LSN (read-your-writes: later reads must
  reflect it);
* **memtable read** — the *read key's* last-write LSN
  (``store.memtable_lsn``): a single-key read observes exactly that
  write, nothing more.  Raising the floor to the global submitted tip
  would also be sound but needlessly strict — one read of a hot key
  would lock the session out of snapshot reads until the next
  checkpoint;
* **snapshot read** — the checkpoint's watermark (the snapshot *is* the
  state as of that LSN).

A snapshot read is legal for a session only while the published
checkpoint's watermark covers the floor; otherwise the read would
travel backwards in the session's own timeline.  The tier enforces that
gate (falling back to the memtable — in virtual time, "blocking until
covered" and "serving from the always-fresh memtable" are the same
guarantee, the latter at a bounded cost); the seeded
``stale_snapshot_read`` mutant disables the gate and verify stage 7
must catch it.

:class:`SnapshotReader` walks superblock → descriptor → bucket chain
through a thread's :class:`~repro.persist.api.PMemView`, so snapshot
reads are *charged* cache traffic like any other access — but they
never touch the log or the memtable, which is the point: a read-mostly
tenant can be served without contending on the write path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.persist.api import PMemView
from repro.store.checkpoint import bucket_of
from repro.store.layout import (
    D_BUCKETS,
    D_HEADS,
    D_WATERMARK,
    N_KEY,
    N_NEXT,
    N_VALUE,
)


class Session:
    """One client's ordering context over the serving tier.

    Bound to a tenant thread (``tid``) for clock/view purposes; ``sid``
    identifies the session to the oracle and the metrics.  All state is
    the LSN floor plus bookkeeping counters.
    """

    def __init__(self, store, sid: int, tid: int) -> None:
        self.store = store
        self.sid = sid
        self.tid = tid
        #: highest LSN whose effects this session has observed
        self.lsn_floor = 0
        self.writes = 0
        self.reads = 0
        self.snapshot_reads = 0

    def observe_write(self, ticket) -> None:
        """Own write: later reads must reflect at least this LSN."""
        self.writes += 1
        if ticket.lsn > self.lsn_floor:
            self.lsn_floor = ticket.lsn

    def observe_memtable_read(self, key: int) -> None:
        """Memtable read: *key*'s last write was observed."""
        self.reads += 1
        observed = self.store.memtable_lsn.get(key, 0)
        if observed > self.lsn_floor:
            self.lsn_floor = observed

    def observe_snapshot_read(self, watermark: int) -> None:
        """Snapshot read: state as of the checkpoint watermark observed."""
        self.snapshot_reads += 1
        if watermark > self.lsn_floor:
            self.lsn_floor = watermark

    def snapshot_covers(self, watermark: int) -> bool:
        """Would a snapshot at *watermark* respect this session's floor?"""
        return watermark >= self.lsn_floor


class SnapshotReader:
    """Point reads from the last *published* checkpoint, log untouched."""

    def __init__(self, store) -> None:
        self.store = store

    def read(
        self, view: PMemView, key: int
    ) -> Optional[Tuple[bool, Optional[int], int]]:
        """Look *key* up in the published checkpoint through *view*.

        Returns ``(found, value, watermark)``, or ``None`` when no
        checkpoint has been published yet.  Every probe is a simulated
        read, so the walk costs (and caches) like real traffic.
        """
        layout = self.store.layout
        stride = layout.field_stride
        pointer = view.read(layout.superblock)
        if pointer == 0:
            return None
        heads = view.read(pointer + D_HEADS * stride)
        buckets = view.read(pointer + D_BUCKETS * stride)
        watermark = view.read(pointer + D_WATERMARK * stride)
        node = view.read(heads + bucket_of(key, buckets) * layout.line_bytes)
        seen = set()
        while node and node not in seen:
            seen.add(node)
            if view.read(node + N_KEY * stride) == key:
                return True, view.read(node + N_VALUE * stride), watermark
            node = view.read(node + N_NEXT * stride)
        return False, None, watermark
