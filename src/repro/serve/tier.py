"""The serving tier: multi-tenant front end over a ``SharedLogStore``.

One :class:`ServeTier` fronts one store.  Tenants open
:class:`~repro.serve.session.Session`\\ s (one per virtual-time thread in
the benchmarks) and issue three request kinds:

* ``put`` — admission-controlled, appended to the shared WAL via the
  store; the ticket is tracked so the request's **arrival→durable**
  latency (queueing delay included — the figure-19 metric) can be
  harvested once its epoch's fence retires.
* ``get`` — served from the live memtable; raises the session floor to
  the read key's last-write LSN.
* ``snapshot_get`` — served from the last published checkpoint when its
  watermark covers the session's LSN floor (read-your-writes gate),
  falling back to the memtable otherwise.
* ``transact`` — a multi-key atomic write set (``repro.store.txn``),
  admission-controlled as **one** unit and tracked by one ticket; the
  session floor advances only at the transaction's commit record.

Backpressure: before every write the tier probes the write-path backlog
— unsealed epoch records plus the acting thread's in-flight writebacks,
plus the caller-reported ingress queue (``backlog=``; the open-loop
clients pass their arrival-queue depth).  The ingress term matters: the
WAL tail is bounded by the epoch trigger, so under overload the queue
that actually grows is the one in front of the tier.  The combined
depth runs through the
:class:`~repro.serve.admission.AdmissionController`.  Engage/release
transitions fire the store's crash-probe points
(``backpressure_engaged`` / ``backpressure_released``), so the verify
sweeps crash inside backpressure windows too.

Seeded mutants (verify stage 7 must turn red on both):

* ``stale_snapshot_read`` — snapshot reads ignore the session floor;
* ``shed_acked_op`` — the admission decision is applied only *after*
  the op has been ticketed, so a request reported "shed" to the client
  is nonetheless journaled, sealed and made durable.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.serve.admission import AdmissionController
from repro.serve.session import Session, SnapshotReader
from repro.sim.stats import Histogram, StatCounter


class ServeTier:
    """Sessions + admission control + snapshot reads over one store."""

    def __init__(
        self,
        store,
        *,
        high_water: int = 48,
        low_water: int = 12,
        mode: str = "shed",
    ) -> None:
        self.store = store
        self.admission = AdmissionController(
            high_water, low_water, mode=mode, on_transition=self._transition
        )
        self.snapshots = SnapshotReader(store)
        self.sessions: Dict[int, Session] = {}
        self.stats = StatCounter()
        #: client-side queueing delay (arrival → service start), per request
        self.queue_wait = Histogram()
        #: arrival → durable cycles for completed writes (the fig-19 metric)
        self.ack_latency = Histogram()
        self.max_depth = 0
        self.mutants: Set[str] = set()  # seeded-bug flags (tests only)
        #: oracle hooks (verify stage 7); None = zero-cost
        self.on_read: Optional[Callable[[int, int, Optional[int], str], None]] = None
        self.on_write: Optional[Callable[[int, int, object], None]] = None
        self.on_shed: Optional[Callable[[int, Optional[object]], None]] = None
        self._rid_seq = itertools.count(1)
        self._inflight: List[Tuple[object, int]] = []  # (ticket, arrival)

    # ----------------------------------------------------------- sessions
    def session(self, sid: int, tid: int) -> Session:
        """Open (or return) session *sid* bound to tenant thread *tid*."""
        session = self.sessions.get(sid)
        if session is None:
            session = Session(self.store, sid, tid)
            self.sessions[sid] = session
        return session

    # ------------------------------------------------------- backpressure
    def depth(self, tid: int, backlog: int = 0) -> int:
        """Write backlog the admission controller gates on.

        *backlog* is the caller's ingress-queue depth (requests arrived
        but not yet serviced) — the component that grows without bound
        past saturation.
        """
        return (
            backlog
            + self.store.unsealed_backlog
            + self.store.flush_backlog(tid)
        )

    def _transition(self, edge: str) -> None:
        self.stats.inc(f"serve_backpressure_{edge}")
        self.store.probe_point(f"backpressure_{edge}")

    def _probe_depth(self, tid: int, backlog: int) -> int:
        depth = self.depth(tid, backlog)
        if depth > self.max_depth:
            self.max_depth = depth
        return depth

    def _relieve(self, tid: int) -> None:
        """Drain the stalled write path while admission is engaged.

        Shed writes append nothing, so a partially filled epoch would
        otherwise never reach its size trigger and the backlog could
        never fall back under ``low_water`` — backpressure that can only
        release through work it refuses to admit.  Sealing the pending
        epoch (cost charged to the shedding tenant's clock) drains the
        WAL tail and retires outstanding writebacks, so the controller's
        release edge is reachable as soon as the ingress queue empties.
        """
        if self.store.unsealed_backlog > 0:
            self.stats.inc("serve_backpressure_drains")
            self.store.sync(tid)
            self.harvest()

    def _note_wait(self, session: Session, arrival: Optional[int]) -> int:
        now = self.store.views[session.tid].ctx.now
        if arrival is None:
            arrival = now
        wait = max(0, now - arrival)
        self.queue_wait.add(wait)
        tracer = self.store.tracer
        if tracer is not None and hasattr(tracer, "request_queued"):
            tracer.request_queued(session.tid, wait, now)
        return arrival

    # ------------------------------------------------------------- writes
    def put(
        self,
        session: Session,
        key: int,
        value: int,
        *,
        arrival: Optional[int] = None,
        rid: Optional[int] = None,
        backlog: int = 0,
    ) -> Tuple[str, Optional[object]]:
        """Admission-gated durable write; returns ``(status, ticket)``.

        ``status`` is ``"ok"`` (ticketed; durable once acked), ``"shed"``
        (rejected — the op did not and will never happen under this rid)
        or ``"delay"`` (backpressure; the caller may re-offer later under
        the *same* rid).
        """
        store = self.store
        tid = session.tid
        rid = next(self._rid_seq) if rid is None else rid
        arrival = self._note_wait(session, arrival)
        depth = self._probe_depth(tid, backlog)

        if "shed_acked_op" in self.mutants:
            # seeded bug: the op is ticketed (journaled, in the epoch,
            # ack-bound) before admission runs, so a "shed" reply lies
            ticket = store.put(tid, key, value)
            session.observe_write(ticket)
            if self.on_write is not None:
                self.on_write(session.sid, key, ticket)
            decision = self.admission.offer(rid, depth)
            if decision != "admit":
                self.stats.inc("serve_rejected")
                if self.on_shed is not None:
                    self.on_shed(rid, ticket)
                self._relieve(tid)
                return decision, None
            self.stats.inc("serve_admitted")
            self._inflight.append((ticket, arrival))
            return "ok", ticket

        decision = self.admission.offer(rid, depth)
        if decision == "shed":
            self.stats.inc("serve_rejected")
            if self.on_shed is not None:
                self.on_shed(rid, None)
            self._relieve(tid)
            return "shed", None
        if decision == "delay":
            self.stats.inc("serve_delayed")
            self._relieve(tid)
            return "delay", None
        self.stats.inc("serve_admitted")
        ticket = store.put(tid, key, value)
        session.observe_write(ticket)
        if self.on_write is not None:
            self.on_write(session.sid, key, ticket)
        self._inflight.append((ticket, arrival))
        return "ok", ticket

    def transact(
        self,
        session: Session,
        writes: Dict[int, int],
        *,
        arrival: Optional[int] = None,
        rid: Optional[int] = None,
        backlog: int = 0,
    ) -> Tuple[str, Optional[object]]:
        """Admission-gated multi-key atomic write; ``(status, ticket)``.

        *writes* maps key -> value (value 0 = delete).  The whole
        transaction is **one admission unit**: one offer against the
        backlog, one rid, one ticket — a shed or delayed transaction
        leaves no trace, an admitted one is all-or-nothing durable once
        its ticket acks.  The session's LSN floor advances only at the
        transaction's commit record, never to an intermediate write.
        """
        store = self.store
        tid = session.tid
        rid = next(self._rid_seq) if rid is None else rid
        arrival = self._note_wait(session, arrival)
        depth = self._probe_depth(tid, backlog)

        decision = self.admission.offer(rid, depth)
        if decision == "shed":
            self.stats.inc("serve_rejected")
            if self.on_shed is not None:
                self.on_shed(rid, None)
            self._relieve(tid)
            return "shed", None
        if decision == "delay":
            self.stats.inc("serve_delayed")
            self._relieve(tid)
            return "delay", None
        self.stats.inc("serve_admitted")
        self.stats.inc("serve_txns")
        txn = store.begin(tid)
        for key, value in writes.items():
            if value:
                txn.put(key, value)
            else:
                txn.delete(key)
        ticket = txn.commit()
        session.observe_write(ticket)
        if self.on_write is not None:
            for key in writes:
                self.on_write(session.sid, key, ticket)
        if ticket.records:
            self._inflight.append((ticket, arrival))
        else:
            # empty write set: durable by vacuity, complete on the spot
            self.stats.inc("serve_completed")
        return "ok", ticket

    # -------------------------------------------------------------- reads
    def get(
        self,
        session: Session,
        key: int,
        *,
        arrival: Optional[int] = None,
    ) -> Optional[int]:
        """Memtable read: always fresh, raises the floor to the tip."""
        self._note_wait(session, arrival)
        value = self.store.get(session.tid, key)
        session.observe_memtable_read(key)
        self.stats.inc("serve_reads")
        if self.on_read is not None:
            self.on_read(session.sid, key, value, "memtable")
        return value

    def snapshot_get(
        self,
        session: Session,
        key: int,
        *,
        arrival: Optional[int] = None,
    ) -> Optional[int]:
        """Checkpoint read when it covers the session floor; else fall back.

        The fallback *is* the "block until covered" semantics in virtual
        time: instead of parking the session until a checkpoint at or
        past its floor publishes, the read is served from the memtable —
        which always covers the floor — at memtable cost.
        """
        self._note_wait(session, arrival)
        store = self.store
        stale = not session.snapshot_covers(store.watermark)
        if "stale_snapshot_read" in self.mutants:
            # seeded bug: the session LSN floor is never consulted
            stale = False
        result = None
        if not stale:
            result = self.snapshots.read(store.views[session.tid], key)
        if result is None:
            # stale for this session, or no checkpoint published yet
            self.stats.inc("serve_snapshot_fallback")
            value = store.get(session.tid, key)
            session.observe_memtable_read(key)
            if self.on_read is not None:
                self.on_read(session.sid, key, value, "memtable")
            return value
        _found, value, watermark = result
        self.stats.inc("serve_snapshot_reads")
        session.observe_snapshot_read(watermark)
        if self.on_read is not None:
            self.on_read(session.sid, key, value, "snapshot")
        return value

    # ------------------------------------------------------------ harvest
    def harvest(self) -> int:
        """Fold acked tickets into the arrival→durable latency histogram."""
        completed = 0
        still: List[Tuple[object, int]] = []
        for ticket, arrival in self._inflight:
            if ticket.acked:
                latency = ticket.durable_now - arrival
                if latency < 0:
                    # cross-thread virtual clocks are loosely synchronized
                    latency = 0
                    self.stats.inc("serve_ack_latency_clamped")
                self.ack_latency.add(latency)
                self.stats.inc("serve_completed")
                completed += 1
            else:
                still.append((ticket, arrival))
        self._inflight = still
        return completed

    def drain(self, tid: Optional[int] = None) -> None:
        """Seal the pending epoch and harvest every completed write."""
        self.store.sync(tid)
        self.harvest()

    @property
    def inflight(self) -> int:
        return len(self._inflight)
