"""Admission control: high/low-water hysteresis over a backlog probe.

The serving tier measures write backlog (unsealed epoch records plus the
acting thread's in-flight writebacks) before every write.  Crossing the
high-water mark engages backpressure; it stays engaged — every new write
is shed or delayed — until the backlog drains to the low-water mark.
The gap between the two marks is the hysteresis band: without it the
controller would flap on every epoch seal, admitting one request per
drain cycle and rejecting the next.

Two backpressure modes:

``shed``
    the request is rejected outright and remembered: a shed request id
    is **never** admitted later, even after pressure clears (the client
    was told "no"; silently executing it afterwards would duplicate the
    op if the client retried under a fresh id).
``delay``
    the request is pushed back to the caller without prejudice — the
    open-loop client keeps it queued and re-offers it later, so the
    op's queueing delay grows instead of its failure count.
"""

from __future__ import annotations

from typing import Callable, Optional, Set


class AdmissionController:
    """The admission state machine (pure; no store dependencies).

    ``offer(rid, depth)`` returns ``"admit"``, ``"shed"`` or ``"delay"``
    and owns all the counters the tier exports.  ``on_transition`` (when
    set) fires with ``"engaged"`` / ``"released"`` exactly once per
    state change — the tier wires it to the store's crash-probe points
    and the obs counters.
    """

    def __init__(
        self,
        high_water: int,
        low_water: int,
        *,
        mode: str = "shed",
        on_transition: Optional[Callable[[str], None]] = None,
    ) -> None:
        if high_water < 1:
            raise ValueError("high_water must be >= 1")
        if not 0 <= low_water < high_water:
            raise ValueError("low_water must be in [0, high_water)")
        if mode not in ("shed", "delay"):
            raise ValueError(f"unknown backpressure mode {mode!r}")
        self.high_water = high_water
        self.low_water = low_water
        self.mode = mode
        self.on_transition = on_transition
        self.engaged = False
        #: request ids that were shed; never admitted afterwards
        self.shed_ids: Set[int] = set()
        self.admitted = 0
        self.shed = 0
        self.delayed = 0
        self.engagements = 0
        self.releases = 0

    def _engage(self) -> None:
        self.engaged = True
        self.engagements += 1
        if self.on_transition is not None:
            self.on_transition("engaged")

    def _release(self) -> None:
        self.engaged = False
        self.releases += 1
        if self.on_transition is not None:
            self.on_transition("released")

    def update(self, depth: int) -> bool:
        """Move the hysteresis state for the observed *depth*; True = engaged."""
        if self.engaged:
            if depth <= self.low_water:
                self._release()
        elif depth >= self.high_water:
            self._engage()
        return self.engaged

    def offer(self, rid: int, depth: int) -> str:
        """Admission decision for request *rid* at the observed *depth*."""
        if rid in self.shed_ids:
            # the client was already told "no" for this request; a late
            # admit would duplicate the op against the client's retry
            self.shed += 1
            return "shed"
        if self.update(depth):
            if self.mode == "shed":
                self.shed_ids.add(rid)
                self.shed += 1
                return "shed"
            self.delayed += 1
            return "delay"
        self.admitted += 1
        return "admit"

    @property
    def rejections(self) -> int:
        """Total refusals (shed in ``shed`` mode, delays in ``delay`` mode)."""
        return self.shed + self.delayed
