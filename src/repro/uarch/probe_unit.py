"""The L1 probe unit (§3.3) with the paper's handshake extensions (§5.4.1).

On probe arrival the unit immediately lowers ``probe_rdy`` and downgrades
matching flush-queue entries (``probe_invalidate``).  One cycle later it
checks ``flush_rdy`` (no FSHR mutating line state) and ``wb_rdy`` (no
eviction in flight) and only then performs the downgrade and answers with
a ProbeAck.  This one-cycle stagger is exactly the deadlock-freedom
argument of §5.4.1: a flush request dequeued in the same cycle the probe
arrived wins the race, completes its metadata work, and re-raises
``flush_rdy``; no further dequeue can start because ``probe_rdy`` is low.

Probes to a line whose MSHR is replaying buffered stores stall on
``mshr_rdy`` (§3.3): those stores are already architecturally committed
and must land before the line can be surrendered.
"""

from __future__ import annotations

from typing import Optional

from repro.tilelink.messages import Probe, ProbeAck
from repro.tilelink.permissions import Cap, Perm, probe_shrink


class ProbeUnit:
    """Handles one coherence probe at a time."""

    def __init__(self, l1) -> None:
        self.l1 = l1
        #: the in-flight probe, public so the L1 tick can gate on it
        self.current: Optional[Probe] = None
        self._arrival_cycle = -1
        self.probes_handled = 0
        self.probes_stalled_cycles = 0
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._obs_seq = 0
        self._obs_key: Optional[str] = None

    @property
    def probe_rdy(self) -> bool:
        """High when no probe is in flight; gates flush-queue dequeue."""
        return self.current is None

    def tick(self, cycle: int) -> None:
        if self.current is None:
            probe = self.l1.pop_channel_b(cycle)
            if probe is None:
                return
            self.current = probe
            self._arrival_cycle = cycle
            if self.obs is not None:
                self._obs_key = f"probe:l1{self.l1.agent_id}:{self._obs_seq}"
                self._obs_seq += 1
                self.obs.open_span(
                    cycle,
                    self._obs_key,
                    "probe",
                    name=f"probe.{probe.cap.name}",
                    track=f"core{self.l1.agent_id}.probe_unit",
                    state="pending",
                    address=probe.address,
                    cap=probe.cap.name,
                )
            # §5.4.1: invalidate conflicting flush-queue entries before
            # anything else can dequeue them.
            self.l1.flush_unit.probe_invalidate(probe.address, probe.cap)
            self.l1.engine.note_progress()
            return
        # The paper's probe unit checks flush_rdy one cycle after lowering
        # probe_rdy, so a same-cycle dequeue completes first.
        if cycle <= self._arrival_cycle:
            return
        if not self.l1.flush_unit.flush_rdy or not self.l1.wbu.wb_rdy:
            self.probes_stalled_cycles += 1
            return
        if self.l1.mshr_blocks_probe(self.current.address):
            self.probes_stalled_cycles += 1
            return
        self._handle(self.current, cycle)
        if self.obs is not None and self._obs_key is not None:
            self.obs.close_span(cycle, self._obs_key)
            self._obs_key = None
        self.current = None

    def _handle(self, probe: Probe, cycle: int) -> None:
        address, cap = probe.address, probe.cap
        hit = self.l1.meta.lookup(address)
        if hit is None:
            current = Perm.NONE
            data = None
        else:
            way, entry = hit
            current = entry.perm
            set_idx = self.l1.geometry.set_index(address)
            data = self.l1.data.read_line(set_idx, way) if entry.dirty else None
            target = min(current, cap.perm)
            if target == Perm.NONE:
                entry.invalidate()
            else:
                entry.perm = Perm(target)
                if entry.dirty:
                    # Dirty data leaves for L2: the line is clean here but
                    # dirty above us, hence not persisted (§6.2) — the skip
                    # bit must drop with the dirty bit.
                    entry.dirty = False
                    entry.skip = False
        self.l1.send_channel_c(
            ProbeAck(
                source=self.l1.agent_id,
                address=address,
                shrink=probe_shrink(current, cap),
                data=data,
            ),
            cycle,
        )
        self.probes_handled += 1
        self.l1.engine.note_progress()
