"""Requests exchanged between the LSU and the L1 data cache."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_req_ids = itertools.count()

WORD_BYTES = 8


class MemOp(enum.Enum):
    """Operations the LSU can fire into the data cache.

    ``CBO_CLEAN``/``CBO_FLUSH`` are the paper's writeback instructions
    (§2.6); they are encoded as STQ requests so they fire in program order
    at the ROB head (§5.1).  ``FENCE`` never reaches the cache — the LSU
    retires it locally once the flush counter drains (§5.3).
    """

    LOAD = "load"
    STORE = "store"
    CBO_CLEAN = "cbo.clean"
    CBO_FLUSH = "cbo.flush"
    CBO_INVAL = "cbo.inval"  # CMO extension: invalidate, discard dirty data
    CBO_ZERO = "cbo.zero"  # CMO extension: zero a whole line
    # SIMF-style ranged CBOs: one flush-queue entry sweeping
    # [base, base + length) line by line, Skip It consulted per line
    CBO_RANGE_CLEAN = "cbo.range.clean"
    CBO_RANGE_FLUSH = "cbo.range.flush"
    CBO_RANGE_INVAL = "cbo.range.inval"
    FENCE = "fence"


# Precomputed member attributes instead of properties: these predicates
# run hundreds of thousands of times per bench point in the LSU hot loops,
# and a plain attribute load is several times cheaper than a descriptor
# call.
for _op in MemOp:
    #: ranged CBOs: one queue entry, many lines (routed like CBOs)
    _op.is_cbo_range = _op in (
        MemOp.CBO_RANGE_CLEAN,
        MemOp.CBO_RANGE_FLUSH,
        MemOp.CBO_RANGE_INVAL,
    )
    #: ops routed to the flush unit (cbo.zero is a store-like op)
    _op.is_cbo = (
        _op in (MemOp.CBO_CLEAN, MemOp.CBO_FLUSH, MemOp.CBO_INVAL)
        or _op.is_cbo_range
    )
    #: STQ-resident ops: stores, CBO.X and fences (§3.2, §5.1)
    _op.is_stq = _op is not MemOp.LOAD
del _op


@dataclass
class MemRequest:
    """One word-granular request fired from the LSU."""

    op: MemOp
    address: int  # byte address, word-aligned for LOAD/STORE
    data: Optional[int] = None  # 64-bit store payload
    length: int = 0  # byte length of a CBO.RANGE sweep ([address, address+length))
    req_id: int = field(default_factory=lambda: next(_req_ids), compare=False)

    def __post_init__(self) -> None:
        if self.op in (MemOp.LOAD, MemOp.STORE) and self.address % WORD_BYTES:
            raise ValueError(f"unaligned word access at {self.address:#x}")
        if self.op is MemOp.STORE and self.data is None:
            raise ValueError("store requires data")
        if self.op.is_cbo_range and self.length <= 0:
            raise ValueError("ranged CBO requires a positive byte length")


class RespKind(enum.Enum):
    OK = "ok"
    NACK = "nack"


@dataclass
class MemResponse:
    """L1 answer to a fired request (same cycle accept/nack; load data later)."""

    kind: RespKind
    req_id: int
    data: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.kind is RespKind.OK
