"""Reference (object-per-line) metadata/data arrays.

This is the original, straightforward implementation of
:mod:`repro.uarch.arrays` kept verbatim as an executable specification:
the packed flat-array rewrite is pinned against it by randomized
differential tests (``tests/test_arrays_packed.py``).  It is not used
by the simulator hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.config import CacheGeometry
from repro.tilelink.permissions import Perm


@dataclass
class RefMetaEntry:
    """One line's metadata."""

    tag: int = 0
    perm: Perm = Perm.NONE
    dirty: bool = False
    skip: bool = False

    @property
    def valid(self) -> bool:
        return self.perm is not Perm.NONE

    def invalidate(self) -> None:
        self.perm = Perm.NONE
        self.dirty = False
        self.skip = False


class RefMetaArray:
    """Set-associative metadata array with list-based LRU state."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List[List[RefMetaEntry]] = [
            [RefMetaEntry() for _ in range(geometry.ways)]
            for _ in range(geometry.num_sets)
        ]
        # per-set LRU order: way indices, most-recent last
        self._lru: List[List[int]] = [
            list(range(geometry.ways)) for _ in range(geometry.num_sets)
        ]

    def lookup(self, address: int) -> Optional[Tuple[int, RefMetaEntry]]:
        """Return (way, entry) on a tag hit, else None."""
        set_idx = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        for way, entry in enumerate(self._sets[set_idx]):
            if entry.valid and entry.tag == tag:
                return way, entry
        return None

    def entry(self, address: int) -> Optional[RefMetaEntry]:
        hit = self.lookup(address)
        return hit[1] if hit else None

    def touch(self, address: int, way: int) -> None:
        """Mark *way* most-recently used in *address*'s set."""
        set_idx = self.geometry.set_index(address)
        order = self._lru[set_idx]
        order.remove(way)
        order.append(way)

    def victim_way(self, address: int, exclude: Optional[set] = None) -> Optional[int]:
        """Pick a victim way (invalid first, else LRU), skipping *exclude*."""
        excluded = exclude or set()
        set_idx = self.geometry.set_index(address)
        for way, entry in enumerate(self._sets[set_idx]):
            if not entry.valid and way not in excluded:
                return way
        for way in self._lru[set_idx]:
            if way not in excluded:
                return way
        return None

    def way_entry(self, address: int, way: int) -> RefMetaEntry:
        return self._sets[self.geometry.set_index(address)][way]

    def install(
        self,
        address: int,
        way: int,
        perm: Perm,
        dirty: bool = False,
        skip: bool = False,
    ) -> RefMetaEntry:
        entry = self.way_entry(address, way)
        entry.tag = self.geometry.tag(address)
        entry.perm = perm
        entry.dirty = dirty
        entry.skip = skip
        self.touch(address, way)
        return entry

    def iter_valid(self) -> Iterator[Tuple[int, int, RefMetaEntry]]:
        """Yield (set, way, entry) for every valid line."""
        for set_idx, ways in enumerate(self._sets):
            for way, entry in enumerate(ways):
                if entry.valid:
                    yield set_idx, way, entry

    def address_of(self, set_idx: int, entry: RefMetaEntry) -> int:
        """Reconstruct the line address of a valid entry."""
        return (
            entry.tag * self.geometry.num_sets + set_idx
        ) * self.geometry.line_bytes


class RefDataArray:
    """Line-granular data SRAM backed by a dict of immutable lines."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._lines: Dict[Tuple[int, int], bytes] = {}

    def read_line(self, set_idx: int, way: int) -> bytes:
        return self._lines.get((set_idx, way), bytes(self.geometry.line_bytes))

    def write_line(self, set_idx: int, way: int, data: bytes) -> None:
        if len(data) != self.geometry.line_bytes:
            raise ValueError("line size mismatch")
        self._lines[(set_idx, way)] = bytes(data)

    def write_word(self, set_idx: int, way: int, offset: int, value: int) -> None:
        """Merge one 64-bit word into a line."""
        line = bytearray(self.read_line(set_idx, way))
        line[offset : offset + 8] = value.to_bytes(8, "little", signed=False)
        self._lines[(set_idx, way)] = bytes(line)

    def read_word(self, set_idx: int, way: int, offset: int) -> int:
        line = self.read_line(set_idx, way)
        return int.from_bytes(line[offset : offset + 8], "little", signed=False)
