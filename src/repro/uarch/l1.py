"""The SonicBOOM L1 data cache with the paper's flush unit (Figure 8).

The cache is non-blocking (MSHRs with replay queues, §3.3), writeback
(writeback unit + probe unit) and hosts the flush unit of §5 plus the
Skip It bit of §6.  The LSU fires requests through :meth:`L1DataCache.fire`
and receives an immediate accept/nack; load data for misses is delivered
later through the registered response sink, mirroring the replay mechanism
of the real design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.flush_queue import CboKind
from repro.core.flush_unit import FlushUnit, OfferResult
from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.sim.stats import StatCounter
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import (
    Acquire,
    GrantAck,
    GrantData,
    Probe,
    ReleaseAck,
    ReleaseAckParam,
)
from repro.tilelink.permissions import Grow, Perm, grow_target
from repro.uarch.arrays import DataArray, MetaArray
from repro.uarch.mshr import Mshr, MshrState
from repro.uarch.probe_unit import ProbeUnit
from repro.uarch.requests import MemOp, MemRequest
from repro.uarch.wbu import WritebackUnit


class FireStatus(enum.Enum):
    OK_NOW = "ok_now"  # complete after the L1 hit latency
    OK_LATER = "ok_later"  # load miss buffered; data arrives via the sink
    NACK = "nack"  # LSU must retry later


@dataclass
class FireOutcome:
    status: FireStatus
    value: Optional[int] = None  # load data for OK_NOW loads

    @property
    def ok(self) -> bool:
        return self.status is not FireStatus.NACK


class L1DataCache:
    """One core's L1 data cache, including the flush unit."""

    def __init__(self, engine: Engine, agent_id: int, params: SoCParams) -> None:
        self.engine = engine
        self.agent_id = agent_id
        self.params = params
        self.geometry = params.l1
        self.meta = MetaArray(self.geometry)
        self.data = DataArray(self.geometry)
        self.flush_unit = FlushUnit(self, params)
        self.mshrs: List[Mshr] = [
            Mshr(i, params.rpq_depth) for i in range(params.num_l1_mshrs)
        ]
        self.wbu = WritebackUnit(self)
        self.probe_unit = ProbeUnit(self)
        self.stats = StatCounter()
        self.resp_sink = None  # set by the owning core
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._obs_mshr_keys: Dict[int, str] = {}  # mshr index -> live span key
        self._obs_seq = 0
        self._reserved_ways: Set[Tuple[int, int]] = set()
        self._mshr_victim_addr = {}
        # line address -> allocated MSHR (at most one MSHR per line);
        # maintained by _miss/_replay_one, replaces O(mshrs) scans
        self._mshr_by_line: Dict[int, Mshr] = {}
        # busy-MSHR count so an idle tick skips the state walk entirely
        self._mshr_active = 0
        # channels, wired by the SoC
        self.chan_a: Optional[BeatChannel] = None
        self.chan_b: Optional[BeatChannel] = None
        self.chan_c: Optional[BeatChannel] = None
        self.chan_d: Optional[BeatChannel] = None
        self.chan_e: Optional[BeatChannel] = None
        engine.register(self)

    def connect(self, a, b, c, d, e) -> None:
        """Attach the five TileLink channels toward the L2 (§2.2)."""
        self.chan_a, self.chan_b, self.chan_c, self.chan_d, self.chan_e = a, b, c, d, e

    # -------------------------------------------------------- channel glue
    def send_channel_c(self, message, cycle: int) -> None:
        self.chan_c.send(message, cycle)

    def pop_channel_b(self, cycle: int) -> Optional[Probe]:
        return self.chan_b.pop_ready(cycle)

    def flush_unit_evicted_line(self, address: int) -> None:
        """Hook invoked when a CBO.FLUSH invalidates a resident line."""
        self.stats.inc("flush_invalidations")

    def mshr_blocks_probe(self, address: int) -> bool:
        """§3.3 ``mshr_rdy``: stall probes while committed stores replay.

        Scans the MSHR list (rather than probing ``_mshr_by_line``) so
        that externally injected MSHR stand-ins are honoured; only called
        while a probe is actually in flight, so it is not hot.
        """
        return any(m.matches(address) and m.replaying for m in self.mshrs)

    # ------------------------------------------------------------ LSU port
    def fire(self, request: MemRequest, cycle: int) -> FireOutcome:
        """Fire one request from the LSU into the cache."""
        line = self.geometry.line_address(request.address)
        if request.op.is_cbo:
            return self._fire_cbo(request, line)
        if request.op is MemOp.LOAD:
            return self._fire_load(request, line)
        if request.op in (MemOp.STORE, MemOp.CBO_ZERO):
            return self._fire_store(request, line)
        raise ValueError(f"L1 cannot serve {request.op}")

    def _fire_cbo(self, request: MemRequest, line: int) -> FireOutcome:
        if request.op.is_cbo_range:
            return self._fire_cbo_range(request, line)
        # A CBO.X racing this core's own in-flight fill of the line would
        # sample metadata that the grant is about to change (and could
        # miss stores buffered in the MSHR's RPQ); nack conservatively.
        if line in self._mshr_by_line:
            self.stats.inc("cbo_nack_mshr")
            return FireOutcome(FireStatus.NACK)
        hit = self.meta.lookup(line)
        kind = {
            MemOp.CBO_CLEAN: CboKind.CLEAN,
            MemOp.CBO_FLUSH: CboKind.FLUSH,
            MemOp.CBO_INVAL: CboKind.INVAL,
        }[request.op]
        result = self.flush_unit.offer(line, kind, hit)
        if result is OfferResult.NACK:
            return FireOutcome(FireStatus.NACK)
        self.stats.inc(f"cbo_{result.value}")
        return FireOutcome(FireStatus.OK_NOW)

    def _fire_cbo_range(self, request: MemRequest, base_line: int) -> FireOutcome:
        """Fire a CBO.RANGE.*: one flush-queue entry for the whole sweep.

        The range covers every line of ``[address, address + length)``.
        The per-line MSHR race rule applies across the range at fire
        time; once the sweep runs, new fills on unreached lines stall
        the cursor instead (the flush unit's ``range_scan`` waits).
        """
        last_line = self.geometry.line_address(
            request.address + request.length - 1
        )
        if self._mshr_by_line:
            line_bytes = self.geometry.line_bytes
            line = base_line
            while line <= last_line:
                if line in self._mshr_by_line:
                    self.stats.inc("cbo_nack_mshr")
                    return FireOutcome(FireStatus.NACK)
                line += line_bytes
        kind = {
            MemOp.CBO_RANGE_CLEAN: CboKind.CLEAN,
            MemOp.CBO_RANGE_FLUSH: CboKind.FLUSH,
            MemOp.CBO_RANGE_INVAL: CboKind.INVAL,
        }[request.op]
        result = self.flush_unit.offer_range(base_line, last_line, kind)
        if result is OfferResult.NACK:
            return FireOutcome(FireStatus.NACK)
        self.stats.inc(f"cbo_range_{result.value}")
        return FireOutcome(FireStatus.OK_NOW)

    def _fire_load(self, request: MemRequest, line: int) -> FireOutcome:
        meta = self.meta
        way = meta.hit_way(line)
        if way >= 0:
            set_idx = line // meta.line_bytes % meta.num_sets
            value = self.data.read_word(set_idx, way, request.address - line)
            meta.touch_slot(set_idx * meta.ways + way)
            self.stats.inc("load_hits")
            return FireOutcome(FireStatus.OK_NOW, value=value)
        forwarded = self.flush_unit.load_forward(line)
        if forwarded is not None:
            offset = request.address - line
            value = int.from_bytes(forwarded[offset : offset + 8], "little")
            self.stats.inc("load_fshr_forwards")
            return FireOutcome(FireStatus.OK_NOW, value=value)
        if self.flush_unit.load_must_wait(line):
            self.stats.inc("load_nack_flush")
            return FireOutcome(FireStatus.NACK)
        self.stats.inc("load_misses")
        return self._miss(request, line, want=Perm.BRANCH)

    def _fire_store(self, request: MemRequest, line: int) -> FireOutcome:
        flush_unit = self.flush_unit
        if (
            flush_unit.flush_counter
            and flush_unit.pending_for(line)
            and not flush_unit.store_may_proceed(line)
        ):
            self.stats.inc("store_nack_flush")
            return FireOutcome(FireStatus.NACK)
        meta = self.meta
        way = meta.hit_way(line)
        if way >= 0:
            set_idx = line // meta.line_bytes % meta.num_sets
            slot = set_idx * meta.ways + way
            if meta.perms[slot] == Perm.TRUNK:
                if request.op is MemOp.CBO_ZERO:
                    # cbo.zero: write a whole line of zeros (CMO extension)
                    self.data.write_line(
                        set_idx, way, bytes(self.geometry.line_bytes)
                    )
                else:
                    self.data.write_word(
                        set_idx, way, request.address - line, request.data
                    )
                meta.dirtys[slot] = 1
                meta.skips[slot] = 0  # a dirty line is never persisted (§6.2)
                meta.touch_slot(slot)
                self.stats.inc("store_hits")
                return FireOutcome(FireStatus.OK_NOW)
        self.stats.inc("store_upgrades" if way >= 0 else "store_misses")
        return self._miss(request, line, want=Perm.TRUNK)

    def _miss(self, request: MemRequest, line: int, want: Perm) -> FireOutcome:
        later = FireStatus.OK_LATER if request.op is MemOp.LOAD else FireStatus.OK_NOW
        mshr = self._mshr_by_line.get(line)
        if mshr is not None:
            if mshr.can_accept_secondary(request):
                mshr.push_secondary(request)
                self.stats.inc("mshr_secondary")
                return FireOutcome(later)
            self.stats.inc("mshr_secondary_nack")
            return FireOutcome(FireStatus.NACK)
        mshr = next((m for m in self.mshrs if not m.busy), None)
        if mshr is None:
            self.stats.inc("mshr_full_nack")
            return FireOutcome(FireStatus.NACK)
        hit = self.meta.lookup(line)
        if hit is not None:
            # permission upgrade (BRANCH -> TRUNK); the line keeps its way
            victim_way = hit[0]
            needs_evict = False
            grow = Grow.BtoT
        else:
            set_idx = self.geometry.set_index(line)
            reserved = {w for (s, w) in self._reserved_ways if s == set_idx}
            victim_way = self.meta.victim_way(line, exclude=reserved)
            if victim_way is None:
                self.stats.inc("no_way_nack")
                return FireOutcome(FireStatus.NACK)
            victim_entry = self.meta.way_entry(line, victim_way)
            needs_evict = victim_entry.valid
            if needs_evict and not self.flush_unit.flush_rdy:
                # §5.4.2: flush_rdy blocks the MSHRs from picking a victim
                self.stats.inc("evict_nack_flush_rdy")
                return FireOutcome(FireStatus.NACK)
            grow = Grow.NtoT if want is Perm.TRUNK else Grow.NtoB
        set_idx = self.geometry.set_index(line)
        self._reserved_ways.add((set_idx, victim_way))
        if needs_evict:
            victim_entry = self.meta.way_entry(line, victim_way)
            self._mshr_victim_addr[mshr.index] = self.meta.address_of(
                set_idx, victim_entry
            )
        mshr.allocate(request, line, want, victim_way, needs_evict, grow)
        self._mshr_by_line[line] = mshr
        self._mshr_active += 1
        self.stats.inc("mshr_allocated")
        if self.obs is not None:
            key = f"mshr:l1{self.agent_id}:{self._obs_seq}"
            self._obs_seq += 1
            self._obs_mshr_keys[mshr.index] = key
            self.obs.open_span(
                self.engine.cycle,
                key,
                "l1_mshr",
                name=f"mshr{mshr.index}",
                track=f"core{self.agent_id}.mshrs",
                state=mshr.state.value,
                address=line,
                grow=grow.name,
            )
        return FireOutcome(later)

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        # Each sub-unit is guarded so a fully idle cache costs four
        # attribute checks per cycle rather than four no-op walks.
        if self.chan_d.pending:
            self._drain_channel_d(cycle)
        probe_unit = self.probe_unit
        if probe_unit.current is not None or self.chan_b.pending:
            probe_unit.tick(cycle)
        flush_unit = self.flush_unit
        if flush_unit.flush_counter:
            flush_unit.tick(cycle)
        if self._mshr_active:
            self._step_mshrs(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this cache could act (fast-forward hook)."""
        # An in-flight probe acts (or counts a stalled cycle) every tick.
        if self.probe_unit.current is not None:
            return cycle + 1
        if self._mshr_active:
            for mshr in self.mshrs:
                state = mshr.state
                if state is MshrState.ACQUIRE or state is MshrState.REPLAY:
                    return cycle + 1
                if (
                    state is MshrState.EVICT_WAIT
                    and self.wbu.wb_rdy
                    and self.flush_unit.flush_rdy
                ):
                    return cycle + 1
        best = (
            self.flush_unit.next_event_cycle(cycle)
            if self.flush_unit.flush_counter
            else None
        )
        if best == cycle + 1:
            return best
        for channel in (self.chan_d, self.chan_b):
            if channel is not None and channel.pending:
                nxt = channel.pending[0][0]
                if best is None or nxt < best:
                    best = nxt
        return best

    def _drain_channel_d(self, cycle: int) -> None:
        for message in self.chan_d.drain_ready(cycle):
            if isinstance(message, GrantData):
                self._handle_grant(message, cycle)
            elif isinstance(message, ReleaseAck):
                if message.param is ReleaseAckParam.ROOT:
                    self.flush_unit.deliver_ack(message.address)
                else:
                    self.wbu.complete(message.address)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected channel D message {message}")
            self.engine.note_progress()

    def _handle_grant(self, grant: GrantData, cycle: int) -> None:
        mshr = self._mshr_by_line.get(grant.address)
        if mshr is not None and mshr.state is not MshrState.WAIT_GRANT:
            mshr = None
        if mshr is None:
            raise RuntimeError(f"GrantData for {grant.address:#x} with no MSHR")
        set_idx = self.geometry.set_index(grant.address)
        skip = self.params.skip_it and not grant.dirty
        self.meta.install(
            grant.address,
            mshr.victim_way,
            perm=grow_target(grant.grow),
            dirty=False,
            skip=skip,
        )
        self.data.write_line(set_idx, mshr.victim_way, grant.data)
        self.chan_e.send(
            GrantAck(source=self.agent_id, address=grant.address), cycle
        )
        mshr.granted()
        self.stats.inc("grants")
        if grant.dirty:
            self.stats.inc("grants_dirty")
        if self.obs is not None and mshr.index in self._obs_mshr_keys:
            self.obs.transition(
                cycle, self._obs_mshr_keys[mshr.index], mshr.state.value
            )

    def _step_mshrs(self, cycle: int) -> None:
        for mshr in self.mshrs:
            if mshr.state is MshrState.EVICT_WAIT:
                if self.wbu.wb_rdy and self.flush_unit.flush_rdy:
                    victim_addr = self._mshr_victim_addr.pop(mshr.index)
                    self.wbu.start_eviction(victim_addr, mshr.victim_way, cycle)
                    mshr.eviction_done()
                    if self.obs is not None and mshr.index in self._obs_mshr_keys:
                        self.obs.transition(
                            cycle, self._obs_mshr_keys[mshr.index], mshr.state.value
                        )
                    self.engine.note_progress()
            elif mshr.state is MshrState.ACQUIRE:
                self.chan_a.send(
                    Acquire(
                        source=self.agent_id, address=mshr.address, grow=mshr.grow
                    ),
                    cycle,
                )
                mshr.acquire_sent()
                if self.obs is not None and mshr.index in self._obs_mshr_keys:
                    self.obs.transition(
                        cycle, self._obs_mshr_keys[mshr.index], mshr.state.value
                    )
                self.engine.note_progress()
            elif mshr.state is MshrState.REPLAY:
                self._replay_one(mshr)

    def _replay_one(self, mshr: Mshr) -> None:
        request = mshr.pop_replay()
        if request is None:
            set_idx = self.geometry.set_index(mshr.address)
            self._reserved_ways.discard((set_idx, mshr.victim_way))
            del self._mshr_by_line[mshr.address]
            self._mshr_active -= 1
            mshr.free()
            if self.obs is not None and mshr.index in self._obs_mshr_keys:
                self.obs.close_span(
                    self.engine.cycle, self._obs_mshr_keys.pop(mshr.index)
                )
            return
        line = mshr.address
        set_idx = self.geometry.set_index(line)
        offset = request.address - line
        if request.op is MemOp.LOAD:
            value = self.data.read_word(set_idx, mshr.victim_way, offset)
            if self.resp_sink is not None:
                self.resp_sink.mem_response(request.req_id, value)
        else:  # STORE / CBO_ZERO
            if request.op is MemOp.CBO_ZERO:
                self.data.write_line(
                    set_idx, mshr.victim_way, bytes(self.geometry.line_bytes)
                )
            else:
                self.data.write_word(set_idx, mshr.victim_way, offset, request.data)
            replay_entry = self.meta.way_entry(line, mshr.victim_way)
            replay_entry.dirty = True
            replay_entry.skip = False
        self.stats.inc("replays")
        self.engine.note_progress()

    # ------------------------------------------------------------- queries
    @property
    def quiescent(self) -> bool:
        """True when nothing is in flight (tests/invariants use this)."""
        return (
            not self._mshr_active
            and not self.flush_unit.flushing
            and self.wbu.wb_rdy
            and self.probe_unit.probe_rdy
        )

    def line_state(self, address: int):
        """(perm, dirty, skip) of a line, or None when absent (test helper)."""
        hit = self.meta.lookup(self.geometry.line_address(address))
        if hit is None:
            return None
        entry = hit[1]
        return entry.perm, entry.dirty, entry.skip
