"""L1 metadata and data SRAM arrays (§3.3), packed flat-array edition.

The metadata array holds, per line: tag, TileLink permission, dirty bit
and — with Skip It — the skip bit (§6.1).  The data array stores line
payloads; the paper widens its read port so one cycle suffices to read a
whole line into an FSHR buffer (§5.2), which is the behaviour modelled by
``read_line``.

State lives in parallel flat arrays indexed by ``slot = set * ways +
way`` — an ``array('Q')`` of tags, one ``bytearray`` each for perm /
dirty / skip, and a list of monotonic LRU stamps — instead of one
Python object per line, so the per-cycle hot paths (tag match, LRU
touch, word read/write) cost a couple of C-level indexing operations.
LRU stamps replace the old per-set recency *list*: a touch writes a
fresh globally increasing stamp (O(1) instead of ``list.remove``), and
the victim scan picks the smallest stamp, which is exactly the front
of the old list (stamps are unique within a set: initial stamps are
the way indices, and every later stamp is ``>= ways``).

The public surface is unchanged: ``lookup``/``install``/``way_entry``
return light-weight :class:`MetaView` proxies (aliased ``MetaEntry``)
whose attribute reads/writes go straight to the packed arrays, so
callers that mutate ``entry.dirty`` or call ``entry.invalidate()``
keep working.  The original object-per-line implementation is retained
in :mod:`repro.uarch.arrays_ref` and pinned against this one by
randomized differential tests.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

from repro.sim.config import CacheGeometry
from repro.tilelink.permissions import Perm

_PERM_NONE = int(Perm.NONE)


class MetaView:
    """Mutable view of one line's metadata slot in the packed arrays."""

    __slots__ = ("_meta", "_slot")

    def __init__(self, meta: "MetaArray", slot: int) -> None:
        self._meta = meta
        self._slot = slot

    @property
    def tag(self) -> int:
        return self._meta.tags[self._slot]

    @tag.setter
    def tag(self, value: int) -> None:
        self._meta.tags[self._slot] = value

    @property
    def perm(self) -> Perm:
        return Perm(self._meta.perms[self._slot])

    @perm.setter
    def perm(self, value: Perm) -> None:
        self._meta.perms[self._slot] = value

    @property
    def dirty(self) -> bool:
        return bool(self._meta.dirtys[self._slot])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._meta.dirtys[self._slot] = 1 if value else 0

    @property
    def skip(self) -> bool:
        return bool(self._meta.skips[self._slot])

    @skip.setter
    def skip(self, value: bool) -> None:
        self._meta.skips[self._slot] = 1 if value else 0

    @property
    def valid(self) -> bool:
        return self._meta.perms[self._slot] != _PERM_NONE

    def invalidate(self) -> None:
        meta, slot = self._meta, self._slot
        meta.perms[slot] = _PERM_NONE
        meta.dirtys[slot] = 0
        meta.skips[slot] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetaView(tag={self.tag}, perm={self.perm!r}, "
            f"dirty={self.dirty}, skip={self.skip})"
        )


#: compatibility alias — callers historically imported ``MetaEntry``
MetaEntry = MetaView


class MetaArray:
    """Set-associative metadata array with LRU replacement state.

    Hot callers may index the packed arrays (``tags`` / ``perms`` /
    ``dirtys`` / ``skips`` / ``stamps``) directly via ``slot = set_idx *
    ways + way``; :meth:`hit_way` is the allocation-free tag probe.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.ways = geometry.ways
        self.num_sets = geometry.num_sets
        self.line_bytes = geometry.line_bytes
        n = self.num_sets * self.ways
        self.tags = array("Q", bytes(8 * n))
        self.perms = bytearray(n)
        self.dirtys = bytearray(n)
        self.skips = bytearray(n)
        # per-slot LRU stamps: larger = more recently used; seeded with
        # the way index so untouched ways keep the old list order, and
        # every touch hands out a fresh stamp >= ways
        self.stamps: List[int] = [slot % self.ways for slot in range(n)]
        self._next_stamp = self.ways

    # -- hot primitives -------------------------------------------------

    def hit_way(self, address: int) -> int:
        """Return the hit way for *address*, or -1 on a miss."""
        line = address // self.line_bytes
        tag = line // self.num_sets
        base = (line % self.num_sets) * self.ways
        perms = self.perms
        tags = self.tags
        for way in range(self.ways):
            slot = base + way
            if perms[slot] and tags[slot] == tag:
                return way
        return -1

    def touch_slot(self, slot: int) -> None:
        """Mark *slot* most-recently used (O(1) stamp write)."""
        self.stamps[slot] = self._next_stamp
        self._next_stamp += 1

    # -- public surface (unchanged) -------------------------------------

    def lookup(self, address: int) -> Optional[Tuple[int, MetaView]]:
        """Return (way, entry) on a tag hit, else None."""
        way = self.hit_way(address)
        if way < 0:
            return None
        base = (address // self.line_bytes % self.num_sets) * self.ways
        return way, MetaView(self, base + way)

    def entry(self, address: int) -> Optional[MetaView]:
        hit = self.lookup(address)
        return hit[1] if hit else None

    def touch(self, address: int, way: int) -> None:
        """Mark *way* most-recently used in *address*'s set."""
        set_idx = address // self.line_bytes % self.num_sets
        self.touch_slot(set_idx * self.ways + way)

    def victim_way(self, address: int, exclude: Optional[set] = None) -> Optional[int]:
        """Pick a victim way (invalid first, else LRU), skipping *exclude*.

        Returns ``None`` when every way is excluded (all reserved by
        in-flight MSHRs), in which case the requester must nack.
        """
        excluded = exclude or ()
        base = (address // self.line_bytes % self.num_sets) * self.ways
        perms = self.perms
        for way in range(self.ways):
            if not perms[base + way] and way not in excluded:
                return way
        stamps = self.stamps
        victim = None
        victim_stamp = -1
        for way in range(self.ways):
            if way in excluded:
                continue
            stamp = stamps[base + way]
            if victim is None or stamp < victim_stamp:
                victim = way
                victim_stamp = stamp
        return victim

    def way_entry(self, address: int, way: int) -> MetaView:
        set_idx = address // self.line_bytes % self.num_sets
        return MetaView(self, set_idx * self.ways + way)

    def install(
        self,
        address: int,
        way: int,
        perm: Perm,
        dirty: bool = False,
        skip: bool = False,
    ) -> MetaView:
        line = address // self.line_bytes
        slot = (line % self.num_sets) * self.ways + way
        self.tags[slot] = line // self.num_sets
        self.perms[slot] = perm
        self.dirtys[slot] = 1 if dirty else 0
        self.skips[slot] = 1 if skip else 0
        self.touch_slot(slot)
        return MetaView(self, slot)

    def iter_valid(self) -> Iterator[Tuple[int, int, MetaView]]:
        """Yield (set, way, entry) for every valid line."""
        ways = self.ways
        perms = self.perms
        for slot in range(self.num_sets * ways):
            if perms[slot]:
                yield slot // ways, slot % ways, MetaView(self, slot)

    def address_of(self, set_idx: int, entry: MetaView) -> int:
        """Reconstruct the line address of a valid entry."""
        return (entry.tag * self.num_sets + set_idx) * self.line_bytes


class DataArray:
    """Line-granular data SRAM.

    ``read_line`` models the widened single-cycle full-line read the paper
    adds for FSHR buffer fills (§5.2); the cycle cost is charged by the
    FSHR state machine, not here.

    Payloads live in one preallocated ``bytearray`` covering the whole
    cache; a line is the ``line_bytes`` span at ``(set * ways + way) *
    line_bytes``, and word reads/writes splice 8-byte spans in place
    instead of rebuilding an immutable line per store.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._ways = geometry.ways
        self._line_bytes = geometry.line_bytes
        self._buf = bytearray(geometry.num_sets * geometry.ways * geometry.line_bytes)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset <= self._line_bytes - 8:
            raise ValueError(
                f"word offset {offset} out of range for a "
                f"{self._line_bytes}-byte line"
            )

    def read_line(self, set_idx: int, way: int) -> bytes:
        base = (set_idx * self._ways + way) * self._line_bytes
        return bytes(self._buf[base : base + self._line_bytes])

    def write_line(self, set_idx: int, way: int, data: bytes) -> None:
        if len(data) != self._line_bytes:
            raise ValueError("line size mismatch")
        base = (set_idx * self._ways + way) * self._line_bytes
        self._buf[base : base + self._line_bytes] = data

    def write_word(self, set_idx: int, way: int, offset: int, value: int) -> None:
        """Merge one 64-bit word into a line."""
        self._check_offset(offset)
        base = (set_idx * self._ways + way) * self._line_bytes + offset
        self._buf[base : base + 8] = value.to_bytes(8, "little", signed=False)

    def read_word(self, set_idx: int, way: int, offset: int) -> int:
        self._check_offset(offset)
        base = (set_idx * self._ways + way) * self._line_bytes + offset
        return int.from_bytes(self._buf[base : base + 8], "little", signed=False)
