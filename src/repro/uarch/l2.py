"""SiFive-style inclusive last-level cache (§3.4) with RootRelease support (§5.5).

The model keeps the structures Figure 4 names: *SinkC* (the per-client
channel C intake), a *ListBuffer* holding requests that could not get an
MSHR (none free, or an MSHR already active on the line), the *Directory*
(full map of L1 sharers + dirty bit per line), the *BankedStore* (line
data), *SourceB/C/D* (probes to L1s, releases to DRAM, responses to L1s).

RootRelease handling follows §5.5:

* the request allocates an MSHR (or waits in the ListBuffer);
* dirty payload data is written to the BankedStore on arrival;
* for ``RootReleaseFlush`` every *other* owner is probed ``toN``; for
  ``RootReleaseClean`` the owner is probed ``toB`` only if it is not the
  requester;
* probing happens even when the requesting core did not hold the line;
* if the line is dirty after merging probe responses, it is released to
  DRAM via SourceC — if it is clean the DRAM writeback is skipped (the
  LLC's *trivial* redundant-writeback filter the paper contrasts Skip It
  against);
* the requester finally receives a ``RootReleaseAck`` via SourceD.

For Skip It (§6.1) the L2 answers Acquires with ``GrantDataDirty``
(modelled as ``GrantData(dirty=True)``) whenever its copy of the line is
dirty, i.e. not yet persisted.
"""

from __future__ import annotations

import enum
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.coherence.directory import DirectoryEntry
from repro.mem.dram import DramModel
from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.sim.stats import StatCounter
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import (
    Acquire,
    GrantAck,
    GrantData,
    Probe,
    ProbeAck,
    ProbeAckParam,
    Release,
    ReleaseAck,
    root_release_ack,
)
from repro.tilelink.permissions import Cap, Grow, Perm, is_report, shrink_result


@dataclass
class ClientLink:
    """The five channels between one L1 client and this cache."""

    a: BeatChannel
    b: BeatChannel
    c: BeatChannel
    d: BeatChannel
    e: BeatChannel


@dataclass
class L2Line:
    data: bytes
    dirty: bool = False
    directory: DirectoryEntry = field(default_factory=DirectoryEntry)


class _MshrKind(enum.Enum):
    ACQUIRE = "acquire"
    ROOT_RELEASE = "root_release"


class _MshrState(enum.Enum):
    START = "start"
    EVICT_PROBE = "evict_probe"  # revoking L1 copies of the L2 victim
    EVICT_WB = "evict_wb"  # victim writeback to DRAM in flight
    FETCH = "fetch"  # line fetch from DRAM in flight
    PROBE = "probe"  # revoking/downgrading L1 copies of the target
    ROOT_WB = "root_wb"  # RootRelease-triggered DRAM writeback in flight
    GRANT_WAIT = "grant_wait"  # waiting for GrantAck on channel E
    DONE = "done"


@dataclass
class _L2Mshr:
    kind: _MshrKind
    client: int
    address: int
    slot: int = -1  # index in the MSHR file, set at allocation
    state: _MshrState = _MshrState.START
    grow: Grow = Grow.NtoB
    cbo: ProbeAckParam = ProbeAckParam.NORMAL  # which RootRelease kind
    awaiting_acks: Set[int] = field(default_factory=set)
    probe_cap: Optional[Cap] = None  # cap of the probes currently awaited
    victim_address: Optional[int] = None

    @property
    def clean(self) -> bool:
        return self.cbo is ProbeAckParam.CLEAN

    @property
    def inval(self) -> bool:
        return self.cbo is ProbeAckParam.INVAL


class InclusiveL2Cache:
    """Shared, inclusive L2 acting as manager for the L1s, client to DRAM."""

    AGENT_ID = 100

    def __init__(self, engine: Engine, params: SoCParams, dram: DramModel) -> None:
        self.engine = engine
        self.params = params
        self.geometry = params.l2
        self.dram = dram
        self.lines: Dict[int, L2Line] = {}  # BankedStore + Directory, by address
        self.links: List[ClientLink] = []
        self.mshrs: List[Optional[_L2Mshr]] = [None] * params.num_l2_mshrs
        self.list_buffer: Deque[Tuple[str, object]] = deque()
        self._ingress: Deque[Tuple[int, str, object]] = deque()  # (ready, kind, msg)
        # busy-slot count plus target/victim address maps so idle ticks
        # and per-message lookups skip the 64-slot scans; _active_slots
        # is kept sorted so iterating it visits MSHRs in slot order,
        # exactly like walking self.mshrs
        self._n_active = 0
        self._active_slots: List[int] = []
        self._mshr_by_addr: Dict[int, _L2Mshr] = {}
        self._victim_by_addr: Dict[int, _L2Mshr] = {}
        # per-set resident addresses in self.lines insertion order, so
        # victim choice stays identical to the old whole-dict filter
        self._set_members: Dict[int, List[int]] = {}
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach
        # Per-slot (mshr object, span key, last seen state) for the poller:
        # L2 MSHR state is mutated in a dozen places, so spans are derived
        # by diffing slot contents once per tick instead of inline hooks.
        self._obs_slots: List[Optional[Tuple[_L2Mshr, str, _MshrState]]] = []
        self._obs_seq = 0
        engine.register(self)

    def add_client(self, link: ClientLink) -> int:
        self.links.append(link)
        return len(self.links) - 1

    # ------------------------------------------------------------- helpers
    def _line(self, address: int) -> Optional[L2Line]:
        return self.lines.get(address)

    def _mshr_on(self, address: int) -> Optional[_L2Mshr]:
        return self._mshr_by_addr.get(address)

    def _busy_lines(self) -> Set[int]:
        return set(self._mshr_by_addr) | set(self._victim_by_addr)

    def _set_occupancy(self, address: int) -> List[int]:
        """Addresses of resident lines mapping to *address*'s set."""
        return self._set_members.get(self.geometry.set_index(address), [])

    def _install_line(self, address: int, line: L2Line) -> None:
        """Install into the BankedStore, keeping the per-set index current."""
        self.lines[address] = line
        self._set_members.setdefault(self.geometry.set_index(address), []).append(
            address
        )

    def _remove_line(self, address: int) -> None:
        del self.lines[address]
        self._set_members[self.geometry.set_index(address)].remove(address)

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        # Each sub-step is guarded so a fully idle L2 costs a handful of
        # truthiness tests per cycle instead of five deque/slot walks.
        self._drain_clients(cycle)
        if self.dram.chan_d.pending:
            self._drain_dram(cycle)
        if self._ingress:
            self._admit_ingress(cycle)
        if self.list_buffer and self._n_active < len(self.mshrs):
            # nothing in the buffer can allocate while every slot is busy
            self._drain_list_buffer(cycle)
        if self._n_active:
            self._step_mshrs(cycle)
        if self.obs is not None:
            self._obs_poll(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this cache could act (fast-forward hook)."""
        if self._n_active:
            for slot in self._active_slots:
                mshr = self.mshrs[slot]
                state = mshr.state
                if state is _MshrState.START or state is _MshrState.DONE:
                    return cycle + 1
                if (
                    (state is _MshrState.EVICT_PROBE or state is _MshrState.PROBE)
                    and not mshr.awaiting_acks
                ):
                    return cycle + 1
        if self.list_buffer and self._n_active < len(self.mshrs):
            # a free MSHR slot lets a buffered request allocate next tick
            return cycle + 1
        best: Optional[int] = None
        for ready, _, _ in self._ingress:
            if best is None or ready < best:
                best = ready
        for link in self.links:
            for channel in (link.a, link.c, link.e):
                if channel.pending:
                    nxt = channel.pending[0][0]
                    if best is None or nxt < best:
                        best = nxt
        dram_pending = self.dram.chan_d.pending
        if dram_pending:
            nxt = dram_pending[0][0]
            if best is None or nxt < best:
                best = nxt
        return best

    def _obs_poll(self, cycle: int) -> None:
        """Diff MSHR slots against last tick, translating changes to spans."""
        if len(self._obs_slots) < len(self.mshrs):
            self._obs_slots.extend(
                [None] * (len(self.mshrs) - len(self._obs_slots))
            )
        for idx, mshr in enumerate(self.mshrs):
            tracked = self._obs_slots[idx]
            if tracked is not None and (mshr is not tracked[0]):
                self.obs.close_span(cycle, tracked[1])
                self._obs_slots[idx] = tracked = None
            if mshr is None:
                continue
            if tracked is None:
                key = f"mshr:l2:{self._obs_seq}"
                self._obs_seq += 1
                self.obs.open_span(
                    cycle,
                    key,
                    "l2_mshr",
                    name=f"l2.{mshr.kind.value}",
                    track="l2.mshrs",
                    state=mshr.state.value,
                    address=mshr.address,
                    client=mshr.client,
                )
                self._obs_slots[idx] = (mshr, key, mshr.state)
            elif mshr.state is not tracked[2]:
                self.obs.transition(cycle, tracked[1], mshr.state.value)
                self._obs_slots[idx] = (mshr, tracked[1], mshr.state)

    # --------------------------------------------------------- channel I/O
    def _drain_clients(self, cycle: int) -> None:
        pipeline = self.params.latencies.l2_pipeline
        for link in self.links:
            if link.a.pending:
                for message in link.a.drain_ready(cycle):
                    self._ingress.append((cycle + pipeline, "acquire", message))
                    self.engine.note_progress()
            if link.c.pending:
                for message in link.c.drain_ready(cycle):
                    # SinkC: split probe responses from (Root)Releases
                    if isinstance(message, ProbeAck) and message.is_root_release:
                        # §5.5: dirty payload data is written to the
                        # BankedStore *on arrival*, even when the request
                        # then waits in the ListBuffer — a concurrent
                        # Acquire must never be granted the stale
                        # pre-writeback data.
                        self._sink_root_release_data(message)
                        self._ingress.append((cycle + pipeline, "root", message))
                    elif isinstance(message, ProbeAck):
                        self._probe_ack(message)
                    elif isinstance(message, Release):
                        self._ingress.append((cycle + pipeline, "release", message))
                    else:  # pragma: no cover - defensive
                        raise TypeError(f"unexpected C message {message}")
                    self.engine.note_progress()
            if link.e.pending:
                for message in link.e.drain_ready(cycle):
                    self._grant_ack(message)
                    self.engine.note_progress()

    def _drain_dram(self, cycle: int) -> None:
        for message in self.dram.chan_d.drain_ready(cycle):
            if isinstance(message, GrantData):
                mshr = self._find_mshr(message.address, _MshrState.FETCH)
                self._install_line(
                    message.address, L2Line(data=message.data, dirty=False)
                )
                mshr.state = _MshrState.START  # re-dispatch, line now present
            elif isinstance(message, ReleaseAck):
                mshr = self._mshr_victim(message.address)
                if mshr is not None and mshr.state is _MshrState.EVICT_WB:
                    del self._victim_by_addr[message.address]
                    mshr.victim_address = None
                    mshr.state = _MshrState.START
                else:
                    mshr = self._find_mshr(message.address, _MshrState.ROOT_WB)
                    line = self._line(mshr.address)
                    if line is not None:
                        line.dirty = False
                    mshr.state = _MshrState.DONE
            self.engine.note_progress()

    def _find_mshr(self, address: int, state: "_MshrState") -> "_L2Mshr":
        mshr = self._mshr_by_addr.get(address)
        if mshr is None or mshr.state is not state:
            raise RuntimeError(f"no MSHR in {state} for {address:#x}")
        return mshr

    def _mshr_victim(self, address: int) -> Optional[_L2Mshr]:
        return self._victim_by_addr.get(address)

    def _admit_ingress(self, cycle: int) -> None:
        deferred: Deque[Tuple[int, str, object]] = deque()
        while self._ingress:
            ready, kind, message = self._ingress.popleft()
            if ready > cycle:
                deferred.append((ready, kind, message))
                continue
            if kind == "release":
                self._voluntary_release(message, cycle)
            else:
                if not self._try_allocate(kind, message, cycle):
                    if len(self.list_buffer) >= self.params.l2_list_buffer_depth:
                        # ListBuffer full: keep the request in ingress (the
                        # channel has already delivered it; this models the
                        # buffered backpressure of the real SinkC).
                        deferred.append((cycle + 1, kind, message))
                    else:
                        self.list_buffer.append((kind, message))
        self._ingress = deferred

    def _drain_list_buffer(self, cycle: int) -> None:
        remaining: Deque[Tuple[str, object]] = deque()
        while self.list_buffer:
            kind, message = self.list_buffer.popleft()
            if not self._try_allocate(kind, message, cycle):
                remaining.append((kind, message))
        self.list_buffer = remaining

    # ------------------------------------------------------- request admit
    def _try_allocate(self, kind: str, message, cycle: int) -> bool:
        if self._mshr_on(message.address) is not None:
            return False
        # lowest free slot: first gap in the sorted active-slot list
        # (identical to scanning self.mshrs for the first None)
        slot = self._n_active
        for i, busy in enumerate(self._active_slots):
            if busy != i:
                slot = i
                break
        if slot >= len(self.mshrs):
            return False
        if kind == "acquire":
            mshr = _L2Mshr(
                kind=_MshrKind.ACQUIRE,
                client=message.source,
                address=message.address,
                grow=message.grow,
            )
            self.stats.inc("acquires")
        else:  # RootRelease
            mshr = _L2Mshr(
                kind=_MshrKind.ROOT_RELEASE,
                client=message.source,
                address=message.address,
                cbo=message.param,
            )
            self._apply_root_release_arrival(message)
            self.stats.inc(f"root_release_{message.param.value.lower()}")
        mshr.slot = slot
        self.mshrs[slot] = mshr
        insort(self._active_slots, slot)
        self._mshr_by_addr[message.address] = mshr
        self._n_active += 1
        self.engine.note_progress()
        return True

    def _sink_root_release_data(self, message: ProbeAck) -> None:
        """BankedStore intake for a RootRelease payload, at arrival time."""
        if message.data is None:
            return
        line = self._line(message.address)
        if line is None:
            # A concurrent RootReleaseFlush from another core can have
            # invalidated the L2 copy while this message (carrying the
            # then-owner's dirty data) was in flight.  The payload is the
            # newest value of the line and must not be lost: reinstall it
            # so the eventual writeback reaches DRAM.
            self._install_line(
                message.address, L2Line(data=message.data, dirty=True)
            )
            self.stats.inc("root_release_reinstalls")
        else:
            line.data = message.data
            line.dirty = True

    def _apply_root_release_arrival(self, message: ProbeAck) -> None:
        """Directory update for a RootRelease at MSHR allocation (§5.5).

        The payload data was already written by ``_sink_root_release_data``
        when the message arrived.
        """
        line = self._line(message.address)
        if line is not None and not is_report(message.shrink):
            line.directory.downgrade(
                message.source, shrink_result(message.shrink)
            )

    def _voluntary_release(self, message: Release, cycle: int) -> None:
        """Handle an L1 eviction Release (possibly racing one of our probes)."""
        line = self._line(message.address)
        if line is None:
            raise RuntimeError("Release for a line absent in inclusive L2")
        if message.data is not None:
            line.data = message.data
            line.dirty = True
        if not is_report(message.shrink):
            line.directory.downgrade(
                message.source, shrink_result(message.shrink)
            )
        mshr = self._mshr_on(message.address)
        if mshr is not None and message.source in mshr.awaiting_acks:
            # the voluntary release crossed our probe; it answers it
            mshr.awaiting_acks.discard(message.source)
        self.links[message.source].d.send(
            ReleaseAck(source=self.AGENT_ID, address=message.address), cycle
        )
        self.stats.inc("releases")

    def _probe_ack(self, message: ProbeAck) -> None:
        mshr = self._mshr_on(message.address) or self._mshr_victim(message.address)
        if mshr is None or message.source not in mshr.awaiting_acks:
            raise RuntimeError(
                f"unsolicited ProbeAck from {message.source} for "
                f"{message.address:#x}"
            )
        line = self._line(message.address)
        assert line is not None
        discard = (
            mshr.kind is _MshrKind.ROOT_RELEASE and mshr.inval
        )  # cbo.inval discards dirty data instead of merging it
        if message.data is not None and not discard:
            line.data = message.data
            line.dirty = True
        # The probe's cap, not the answer's shrink, decides the directory
        # update: the client is at most at `cap` now even when it answers
        # with a stale report (e.g. NtoN because a concurrent flush
        # already invalidated its copy).
        assert mshr.probe_cap is not None
        current = line.directory.perm_of(message.source)
        target = min(current, mshr.probe_cap.perm)
        line.directory.downgrade(message.source, Perm(target))
        mshr.awaiting_acks.discard(message.source)
        self.stats.inc("probe_acks")

    def _grant_ack(self, message: GrantAck) -> None:
        mshr = self._mshr_on(message.address)
        if mshr is None or mshr.state is not _MshrState.GRANT_WAIT:
            raise RuntimeError("GrantAck with no granting MSHR")
        self._free(mshr)

    # ------------------------------------------------------------ MSHR FSM
    def _step_mshrs(self, cycle: int) -> None:
        start = _MshrState.START
        evict_probe = _MshrState.EVICT_PROBE
        probe = _MshrState.PROBE
        done = _MshrState.DONE
        mshrs = self.mshrs
        # Snapshot the active slots: handlers may _free (which edits the
        # list); the copy is tiny — only busy slots appear in it.
        for slot in tuple(self._active_slots):
            mshr = mshrs[slot]
            if mshr is None:  # pragma: no cover - freed earlier this walk
                continue
            state = mshr.state
            if state is start:
                self._dispatch(mshr, cycle)
            elif state is evict_probe or state is probe:
                if not mshr.awaiting_acks:
                    if state is evict_probe:
                        self._finish_victim_probe(mshr, cycle)
                    else:
                        self._after_target_probe(mshr, cycle)
            elif state is done:
                self._complete(mshr, cycle)

    def _dispatch(self, mshr: _L2Mshr, cycle: int) -> None:
        line = self._line(mshr.address)
        if mshr.kind is _MshrKind.ACQUIRE:
            if line is None:
                if self._need_eviction(mshr.address):
                    self._start_victim_eviction(mshr, cycle)
                else:
                    self._fetch_from_dram(mshr, cycle)
                return
            self._probe_for_acquire(mshr, line, cycle)
        else:  # ROOT_RELEASE
            self._probe_for_root_release(mshr, line, cycle)

    # -------------------------------------------------- acquire processing
    def _need_eviction(self, address: int) -> bool:
        set_idx = self.geometry.set_index(address)
        resident = self._set_occupancy(address)
        # Concurrent fills into the same set also claim ways: count MSHRs
        # whose fetched line has not landed yet, or this set overflows.
        inflight = sum(
            1
            for s in self._active_slots
            for m in (self.mshrs[s],)
            if m.address != address
            and m.state is _MshrState.FETCH
            and self.geometry.set_index(m.address) == set_idx
            and m.address not in self.lines
        )
        return len(resident) + inflight >= self.geometry.ways

    def _start_victim_eviction(self, mshr: _L2Mshr, cycle: int) -> None:
        busy = self._busy_lines()
        candidates = [a for a in self._set_occupancy(mshr.address) if a not in busy]
        if not candidates:
            return  # every line in the set is mid-transaction; retry next cycle
        victim = candidates[0]
        mshr.victim_address = victim
        self._victim_by_addr[victim] = mshr
        line = self.lines[victim]
        if line.directory.sharers:
            mshr.awaiting_acks = set(line.directory.sharers)
            mshr.probe_cap = Cap.toN
            for client in mshr.awaiting_acks:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=victim, cap=Cap.toN), cycle
                )
            mshr.state = _MshrState.EVICT_PROBE
            self.stats.inc("inclusive_probes", len(mshr.awaiting_acks))
        else:
            self._writeback_victim(mshr, cycle)

    def _finish_victim_probe(self, mshr: _L2Mshr, cycle: int) -> None:
        self._writeback_victim(mshr, cycle)

    def _writeback_victim(self, mshr: _L2Mshr, cycle: int) -> None:
        victim = mshr.victim_address
        assert victim is not None
        line = self.lines[victim]
        if line.dirty:
            self.dram.chan_c.send(
                Release(source=self.AGENT_ID, address=victim, data=line.data), cycle
            )
            self._remove_line(victim)
            mshr.state = _MshrState.EVICT_WB
            self.stats.inc("victim_writebacks")
        else:
            self._remove_line(victim)
            del self._victim_by_addr[victim]
            mshr.victim_address = None
            mshr.state = _MshrState.START
            self.stats.inc("victim_drops")

    def _fetch_from_dram(self, mshr: _L2Mshr, cycle: int) -> None:
        self.dram.chan_a.send(
            Acquire(source=self.AGENT_ID, address=mshr.address, grow=Grow.NtoT),
            cycle,
        )
        mshr.state = _MshrState.FETCH
        self.stats.inc("dram_fetches")

    def _probe_for_acquire(self, mshr: _L2Mshr, line: L2Line, cycle: int) -> None:
        want_trunk = mshr.grow in (Grow.NtoT, Grow.BtoT)
        directory = line.directory
        if want_trunk:
            targets = directory.sharers - {mshr.client}
            cap = Cap.toN
        else:
            targets = (
                {directory.owner}
                if directory.owner is not None and directory.owner != mshr.client
                else set()
            )
            cap = Cap.toB
        if targets:
            mshr.awaiting_acks = set(targets)
            mshr.probe_cap = cap
            for client in targets:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=mshr.address, cap=cap),
                    cycle,
                )
            mshr.state = _MshrState.PROBE
            self.stats.inc("coherence_probes", len(targets))
        else:
            self._grant(mshr, line, cycle)

    def _after_target_probe(self, mshr: _L2Mshr, cycle: int) -> None:
        line = self._line(mshr.address)
        assert line is not None
        if mshr.kind is _MshrKind.ACQUIRE:
            self._grant(mshr, line, cycle)
        else:
            self._root_release_writeback(mshr, line, cycle)

    def _grant(self, mshr: _L2Mshr, line: L2Line, cycle: int) -> None:
        want_trunk = mshr.grow in (Grow.NtoT, Grow.BtoT)
        others = line.directory.sharers - {mshr.client}
        # Exclusive-state optimisation: a lone reader gets TRUNK clean.
        if want_trunk or not others:
            granted = Grow.NtoT
            perm = Perm.TRUNK
        else:
            granted = Grow.NtoB
            perm = Perm.BRANCH
        line.directory.grant(mshr.client, perm)
        self.links[mshr.client].d.send(
            GrantData(
                source=self.AGENT_ID,
                address=mshr.address,
                grow=granted,
                data=line.data,
                # GrantDataDirty (§6): tell the L1 the line is not persisted
                dirty=line.dirty,
            ),
            cycle,
        )
        mshr.state = _MshrState.GRANT_WAIT
        self.stats.inc("grants")
        if line.dirty:
            self.stats.inc("grants_dirty")

    # --------------------------------------------- RootRelease processing
    def _probe_for_root_release(
        self, mshr: _L2Mshr, line: Optional[L2Line], cycle: int
    ) -> None:
        if line is None:
            # Absent in the inclusive L2: no cache anywhere holds it, and
            # DRAM already has the authoritative copy; just acknowledge.
            mshr.state = _MshrState.DONE
            self.stats.inc("root_release_absent")
            return
        directory = line.directory
        if mshr.clean:
            targets = (
                {directory.owner}
                if directory.owner is not None and directory.owner != mshr.client
                else set()
            )
            cap = Cap.toB
        else:
            targets = directory.sharers - {mshr.client}
            cap = Cap.toN
        if targets:
            mshr.awaiting_acks = set(targets)
            mshr.probe_cap = cap
            for client in targets:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=mshr.address, cap=cap),
                    cycle,
                )
            mshr.state = _MshrState.PROBE
            self.stats.inc("root_probes", len(targets))
        else:
            self._root_release_writeback(mshr, line, cycle)

    def _root_release_writeback(
        self, mshr: _L2Mshr, line: L2Line, cycle: int
    ) -> None:
        if mshr.inval:
            # discard semantics: no DRAM writeback, ever
            line.dirty = False
            mshr.state = _MshrState.DONE
            self.stats.inc("root_inval_discards")
            return
        if line.dirty:
            self.dram.chan_c.send(
                Release(source=self.AGENT_ID, address=mshr.address, data=line.data),
                cycle,
            )
            mshr.state = _MshrState.ROOT_WB
            self.stats.inc("root_writebacks")
        else:
            # The LLC's trivial filter: clean line, skip the DRAM writeback.
            mshr.state = _MshrState.DONE
            self.stats.inc("root_writebacks_skipped")

    def _complete(self, mshr: _L2Mshr, cycle: int) -> None:
        if mshr.kind is _MshrKind.ROOT_RELEASE:
            line = self._line(mshr.address)
            if not mshr.clean and line is not None and line.directory.idle:
                # CBO.FLUSH/CBO.INVAL invalidate the whole hierarchy (§2.6)
                self._remove_line(mshr.address)
                self.stats.inc("flush_l2_invalidations")
            self.links[mshr.client].d.send(
                root_release_ack(self.AGENT_ID, mshr.address), cycle
            )
            self.stats.inc("root_release_acks")
        self._free(mshr)

    def _free(self, mshr: _L2Mshr) -> None:
        self.mshrs[mshr.slot] = None
        self._active_slots.remove(mshr.slot)
        del self._mshr_by_addr[mshr.address]
        if mshr.victim_address is not None:  # defensive; cleared on WB ack
            self._victim_by_addr.pop(mshr.victim_address, None)
        self._n_active -= 1
        self.engine.note_progress()

    # ------------------------------------------------------------- queries
    @property
    def quiescent(self) -> bool:
        return not (self._n_active or self.list_buffer or self._ingress)

    def line_dirty(self, address: int) -> Optional[bool]:
        line = self._line(address)
        return None if line is None else line.dirty

    def directory_of(self, address: int) -> Optional[DirectoryEntry]:
        line = self._line(address)
        return None if line is None else line.directory
