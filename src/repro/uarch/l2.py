"""SiFive-style inclusive last-level cache (§3.4) with RootRelease support (§5.5).

The model keeps the structures Figure 4 names: *SinkC* (the per-client
channel C intake), a *ListBuffer* holding requests that could not get an
MSHR (none free, or an MSHR already active on the line), the *Directory*
(full map of L1 sharers + dirty bit per line), the *BankedStore* (line
data), *SourceB/C/D* (probes to L1s, releases to DRAM, responses to L1s).

RootRelease handling follows §5.5:

* the request allocates an MSHR (or waits in the ListBuffer);
* dirty payload data is written to the BankedStore on arrival;
* for ``RootReleaseFlush`` every *other* owner is probed ``toN``; for
  ``RootReleaseClean`` the owner is probed ``toB`` only if it is not the
  requester;
* probing happens even when the requesting core did not hold the line;
* if the line is dirty after merging probe responses, it is released to
  DRAM via SourceC — if it is clean the DRAM writeback is skipped (the
  LLC's *trivial* redundant-writeback filter the paper contrasts Skip It
  against);
* the requester finally receives a ``RootReleaseAck`` via SourceD.

For Skip It (§6.1) the L2 answers Acquires with ``GrantDataDirty``
(modelled as ``GrantData(dirty=True)``) whenever its copy of the line is
dirty, i.e. not yet persisted.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.coherence.directory import DirectoryEntry
from repro.mem.dram import DramModel
from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.sim.stats import StatCounter
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import (
    Acquire,
    GrantAck,
    GrantData,
    Probe,
    ProbeAck,
    ProbeAckParam,
    Release,
    ReleaseAck,
    root_release_ack,
)
from repro.tilelink.permissions import Cap, Grow, Perm, is_report, shrink_result


@dataclass
class ClientLink:
    """The five channels between one L1 client and this cache."""

    a: BeatChannel
    b: BeatChannel
    c: BeatChannel
    d: BeatChannel
    e: BeatChannel


@dataclass
class L2Line:
    data: bytes
    dirty: bool = False
    directory: DirectoryEntry = field(default_factory=DirectoryEntry)


class _MshrKind(enum.Enum):
    ACQUIRE = "acquire"
    ROOT_RELEASE = "root_release"


class _MshrState(enum.Enum):
    START = "start"
    EVICT_PROBE = "evict_probe"  # revoking L1 copies of the L2 victim
    EVICT_WB = "evict_wb"  # victim writeback to DRAM in flight
    FETCH = "fetch"  # line fetch from DRAM in flight
    PROBE = "probe"  # revoking/downgrading L1 copies of the target
    ROOT_WB = "root_wb"  # RootRelease-triggered DRAM writeback in flight
    GRANT_WAIT = "grant_wait"  # waiting for GrantAck on channel E
    DONE = "done"


@dataclass
class _L2Mshr:
    kind: _MshrKind
    client: int
    address: int
    state: _MshrState = _MshrState.START
    grow: Grow = Grow.NtoB
    cbo: ProbeAckParam = ProbeAckParam.NORMAL  # which RootRelease kind
    awaiting_acks: Set[int] = field(default_factory=set)
    probe_cap: Optional[Cap] = None  # cap of the probes currently awaited
    victim_address: Optional[int] = None

    @property
    def clean(self) -> bool:
        return self.cbo is ProbeAckParam.CLEAN

    @property
    def inval(self) -> bool:
        return self.cbo is ProbeAckParam.INVAL


class InclusiveL2Cache:
    """Shared, inclusive L2 acting as manager for the L1s, client to DRAM."""

    AGENT_ID = 100

    def __init__(self, engine: Engine, params: SoCParams, dram: DramModel) -> None:
        self.engine = engine
        self.params = params
        self.geometry = params.l2
        self.dram = dram
        self.lines: Dict[int, L2Line] = {}  # BankedStore + Directory, by address
        self.links: List[ClientLink] = []
        self.mshrs: List[Optional[_L2Mshr]] = [None] * params.num_l2_mshrs
        self.list_buffer: Deque[Tuple[str, object]] = deque()
        self._ingress: Deque[Tuple[int, str, object]] = deque()  # (ready, kind, msg)
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach
        # Per-slot (mshr object, span key, last seen state) for the poller:
        # L2 MSHR state is mutated in a dozen places, so spans are derived
        # by diffing slot contents once per tick instead of inline hooks.
        self._obs_slots: List[Optional[Tuple[_L2Mshr, str, _MshrState]]] = []
        self._obs_seq = 0
        engine.register(self)

    def add_client(self, link: ClientLink) -> int:
        self.links.append(link)
        return len(self.links) - 1

    # ------------------------------------------------------------- helpers
    def _line(self, address: int) -> Optional[L2Line]:
        return self.lines.get(address)

    def _mshr_on(self, address: int) -> Optional[_L2Mshr]:
        for mshr in self.mshrs:
            if mshr is not None and mshr.address == address:
                return mshr
        return None

    def _busy_lines(self) -> Set[int]:
        busy = set()
        for mshr in self.mshrs:
            if mshr is not None:
                busy.add(mshr.address)
                if mshr.victim_address is not None:
                    busy.add(mshr.victim_address)
        return busy

    def _set_occupancy(self, address: int) -> List[int]:
        """Addresses of resident lines mapping to *address*'s set."""
        set_idx = self.geometry.set_index(address)
        return [
            a for a in self.lines if self.geometry.set_index(a) == set_idx
        ]

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        self._drain_clients(cycle)
        self._drain_dram(cycle)
        self._admit_ingress(cycle)
        self._drain_list_buffer(cycle)
        self._step_mshrs(cycle)
        if self.obs is not None:
            self._obs_poll(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this cache could act (fast-forward hook)."""
        best: Optional[int] = None

        def consider(nxt: Optional[int]) -> None:
            nonlocal best
            if nxt is not None and (best is None or nxt < best):
                best = nxt

        for mshr in self.mshrs:
            if mshr is None:
                continue
            if mshr.state in (_MshrState.START, _MshrState.DONE):
                return cycle + 1
            if (
                mshr.state in (_MshrState.EVICT_PROBE, _MshrState.PROBE)
                and not mshr.awaiting_acks
            ):
                return cycle + 1
        if self.list_buffer and any(m is None for m in self.mshrs):
            # a freed MSHR slot lets a buffered request allocate next tick
            return cycle + 1
        for ready, _, _ in self._ingress:
            consider(ready)
        for link in self.links:
            consider(link.a.next_event_cycle(cycle))
            consider(link.c.next_event_cycle(cycle))
            consider(link.e.next_event_cycle(cycle))
        consider(self.dram.chan_d.next_event_cycle(cycle))
        return best

    def _obs_poll(self, cycle: int) -> None:
        """Diff MSHR slots against last tick, translating changes to spans."""
        if len(self._obs_slots) < len(self.mshrs):
            self._obs_slots.extend(
                [None] * (len(self.mshrs) - len(self._obs_slots))
            )
        for idx, mshr in enumerate(self.mshrs):
            tracked = self._obs_slots[idx]
            if tracked is not None and (mshr is not tracked[0]):
                self.obs.close_span(cycle, tracked[1])
                self._obs_slots[idx] = tracked = None
            if mshr is None:
                continue
            if tracked is None:
                key = f"mshr:l2:{self._obs_seq}"
                self._obs_seq += 1
                self.obs.open_span(
                    cycle,
                    key,
                    "l2_mshr",
                    name=f"l2.{mshr.kind.value}",
                    track="l2.mshrs",
                    state=mshr.state.value,
                    address=mshr.address,
                    client=mshr.client,
                )
                self._obs_slots[idx] = (mshr, key, mshr.state)
            elif mshr.state is not tracked[2]:
                self.obs.transition(cycle, tracked[1], mshr.state.value)
                self._obs_slots[idx] = (mshr, tracked[1], mshr.state)

    # --------------------------------------------------------- channel I/O
    def _drain_clients(self, cycle: int) -> None:
        pipeline = self.params.latencies.l2_pipeline
        for client, link in enumerate(self.links):
            for message in link.a.drain_ready(cycle):
                self._ingress.append((cycle + pipeline, "acquire", message))
                self.engine.note_progress()
            for message in link.c.drain_ready(cycle):
                # SinkC: split probe responses from (Root)Releases
                if isinstance(message, ProbeAck) and message.is_root_release:
                    # §5.5: dirty payload data is written to the
                    # BankedStore *on arrival*, even when the request then
                    # waits in the ListBuffer — a concurrent Acquire must
                    # never be granted the stale pre-writeback data.
                    self._sink_root_release_data(message)
                    self._ingress.append((cycle + pipeline, "root", message))
                elif isinstance(message, ProbeAck):
                    self._probe_ack(message)
                elif isinstance(message, Release):
                    self._ingress.append((cycle + pipeline, "release", message))
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unexpected C message {message}")
                self.engine.note_progress()
            for message in link.e.drain_ready(cycle):
                self._grant_ack(message)
                self.engine.note_progress()

    def _drain_dram(self, cycle: int) -> None:
        for message in self.dram.chan_d.drain_ready(cycle):
            if isinstance(message, GrantData):
                mshr = self._find_mshr(message.address, _MshrState.FETCH)
                self.lines[message.address] = L2Line(data=message.data, dirty=False)
                mshr.state = _MshrState.START  # re-dispatch, line now present
            elif isinstance(message, ReleaseAck):
                mshr = self._mshr_victim(message.address)
                if mshr is not None and mshr.state is _MshrState.EVICT_WB:
                    mshr.victim_address = None
                    mshr.state = _MshrState.START
                else:
                    mshr = self._find_mshr(message.address, _MshrState.ROOT_WB)
                    line = self._line(mshr.address)
                    if line is not None:
                        line.dirty = False
                    mshr.state = _MshrState.DONE
            self.engine.note_progress()

    def _find_mshr(self, address: int, state: "_MshrState") -> "_L2Mshr":
        for mshr in self.mshrs:
            if mshr is not None and mshr.address == address and mshr.state is state:
                return mshr
        raise RuntimeError(f"no MSHR in {state} for {address:#x}")

    def _mshr_victim(self, address: int) -> Optional[_L2Mshr]:
        for mshr in self.mshrs:
            if mshr is not None and mshr.victim_address == address:
                return mshr
        return None

    def _admit_ingress(self, cycle: int) -> None:
        deferred: Deque[Tuple[int, str, object]] = deque()
        while self._ingress:
            ready, kind, message = self._ingress.popleft()
            if ready > cycle:
                deferred.append((ready, kind, message))
                continue
            if kind == "release":
                self._voluntary_release(message, cycle)
            else:
                if not self._try_allocate(kind, message, cycle):
                    if len(self.list_buffer) >= self.params.l2_list_buffer_depth:
                        # ListBuffer full: keep the request in ingress (the
                        # channel has already delivered it; this models the
                        # buffered backpressure of the real SinkC).
                        deferred.append((cycle + 1, kind, message))
                    else:
                        self.list_buffer.append((kind, message))
        self._ingress = deferred

    def _drain_list_buffer(self, cycle: int) -> None:
        remaining: Deque[Tuple[str, object]] = deque()
        while self.list_buffer:
            kind, message = self.list_buffer.popleft()
            if not self._try_allocate(kind, message, cycle):
                remaining.append((kind, message))
        self.list_buffer = remaining

    # ------------------------------------------------------- request admit
    def _try_allocate(self, kind: str, message, cycle: int) -> bool:
        if self._mshr_on(message.address) is not None:
            return False
        slot = next((i for i, m in enumerate(self.mshrs) if m is None), None)
        if slot is None:
            return False
        if kind == "acquire":
            mshr = _L2Mshr(
                kind=_MshrKind.ACQUIRE,
                client=message.source,
                address=message.address,
                grow=message.grow,
            )
            self.stats.inc("acquires")
        else:  # RootRelease
            mshr = _L2Mshr(
                kind=_MshrKind.ROOT_RELEASE,
                client=message.source,
                address=message.address,
                cbo=message.param,
            )
            self._apply_root_release_arrival(message)
            self.stats.inc(f"root_release_{message.param.value.lower()}")
        self.mshrs[slot] = mshr
        self.engine.note_progress()
        return True

    def _sink_root_release_data(self, message: ProbeAck) -> None:
        """BankedStore intake for a RootRelease payload, at arrival time."""
        if message.data is None:
            return
        line = self._line(message.address)
        if line is None:
            # A concurrent RootReleaseFlush from another core can have
            # invalidated the L2 copy while this message (carrying the
            # then-owner's dirty data) was in flight.  The payload is the
            # newest value of the line and must not be lost: reinstall it
            # so the eventual writeback reaches DRAM.
            self.lines[message.address] = L2Line(data=message.data, dirty=True)
            self.stats.inc("root_release_reinstalls")
        else:
            line.data = message.data
            line.dirty = True

    def _apply_root_release_arrival(self, message: ProbeAck) -> None:
        """Directory update for a RootRelease at MSHR allocation (§5.5).

        The payload data was already written by ``_sink_root_release_data``
        when the message arrived.
        """
        line = self._line(message.address)
        if line is not None and not is_report(message.shrink):
            line.directory.downgrade(
                message.source, shrink_result(message.shrink)
            )

    def _voluntary_release(self, message: Release, cycle: int) -> None:
        """Handle an L1 eviction Release (possibly racing one of our probes)."""
        line = self._line(message.address)
        if line is None:
            raise RuntimeError("Release for a line absent in inclusive L2")
        if message.data is not None:
            line.data = message.data
            line.dirty = True
        if not is_report(message.shrink):
            line.directory.downgrade(
                message.source, shrink_result(message.shrink)
            )
        mshr = self._mshr_on(message.address)
        if mshr is not None and message.source in mshr.awaiting_acks:
            # the voluntary release crossed our probe; it answers it
            mshr.awaiting_acks.discard(message.source)
        self.links[message.source].d.send(
            ReleaseAck(source=self.AGENT_ID, address=message.address), cycle
        )
        self.stats.inc("releases")

    def _probe_ack(self, message: ProbeAck) -> None:
        mshr = self._mshr_on(message.address) or self._mshr_victim(message.address)
        if mshr is None or message.source not in mshr.awaiting_acks:
            raise RuntimeError(
                f"unsolicited ProbeAck from {message.source} for "
                f"{message.address:#x}"
            )
        line = self._line(message.address)
        assert line is not None
        discard = (
            mshr.kind is _MshrKind.ROOT_RELEASE and mshr.inval
        )  # cbo.inval discards dirty data instead of merging it
        if message.data is not None and not discard:
            line.data = message.data
            line.dirty = True
        # The probe's cap, not the answer's shrink, decides the directory
        # update: the client is at most at `cap` now even when it answers
        # with a stale report (e.g. NtoN because a concurrent flush
        # already invalidated its copy).
        assert mshr.probe_cap is not None
        current = line.directory.perm_of(message.source)
        target = min(current, mshr.probe_cap.perm)
        line.directory.downgrade(message.source, Perm(target))
        mshr.awaiting_acks.discard(message.source)
        self.stats.inc("probe_acks")

    def _grant_ack(self, message: GrantAck) -> None:
        mshr = self._mshr_on(message.address)
        if mshr is None or mshr.state is not _MshrState.GRANT_WAIT:
            raise RuntimeError("GrantAck with no granting MSHR")
        self._free(mshr)

    # ------------------------------------------------------------ MSHR FSM
    def _step_mshrs(self, cycle: int) -> None:
        for mshr in list(self.mshrs):
            if mshr is None:
                continue
            if mshr.state is _MshrState.START:
                self._dispatch(mshr, cycle)
            elif mshr.state in (_MshrState.EVICT_PROBE, _MshrState.PROBE):
                if not mshr.awaiting_acks:
                    if mshr.state is _MshrState.EVICT_PROBE:
                        self._finish_victim_probe(mshr, cycle)
                    else:
                        self._after_target_probe(mshr, cycle)
            elif mshr.state is _MshrState.DONE:
                self._complete(mshr, cycle)

    def _dispatch(self, mshr: _L2Mshr, cycle: int) -> None:
        line = self._line(mshr.address)
        if mshr.kind is _MshrKind.ACQUIRE:
            if line is None:
                if self._need_eviction(mshr.address):
                    self._start_victim_eviction(mshr, cycle)
                else:
                    self._fetch_from_dram(mshr, cycle)
                return
            self._probe_for_acquire(mshr, line, cycle)
        else:  # ROOT_RELEASE
            self._probe_for_root_release(mshr, line, cycle)

    # -------------------------------------------------- acquire processing
    def _need_eviction(self, address: int) -> bool:
        set_idx = self.geometry.set_index(address)
        resident = self._set_occupancy(address)
        # Concurrent fills into the same set also claim ways: count MSHRs
        # whose fetched line has not landed yet, or this set overflows.
        inflight = sum(
            1
            for m in self.mshrs
            if m is not None
            and m.address != address
            and m.state is _MshrState.FETCH
            and self.geometry.set_index(m.address) == set_idx
            and m.address not in self.lines
        )
        return len(resident) + inflight >= self.geometry.ways

    def _start_victim_eviction(self, mshr: _L2Mshr, cycle: int) -> None:
        busy = self._busy_lines()
        candidates = [a for a in self._set_occupancy(mshr.address) if a not in busy]
        if not candidates:
            return  # every line in the set is mid-transaction; retry next cycle
        victim = candidates[0]
        mshr.victim_address = victim
        line = self.lines[victim]
        if line.directory.sharers:
            mshr.awaiting_acks = set(line.directory.sharers)
            mshr.probe_cap = Cap.toN
            for client in mshr.awaiting_acks:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=victim, cap=Cap.toN), cycle
                )
            mshr.state = _MshrState.EVICT_PROBE
            self.stats.inc("inclusive_probes", len(mshr.awaiting_acks))
        else:
            self._writeback_victim(mshr, cycle)

    def _finish_victim_probe(self, mshr: _L2Mshr, cycle: int) -> None:
        self._writeback_victim(mshr, cycle)

    def _writeback_victim(self, mshr: _L2Mshr, cycle: int) -> None:
        victim = mshr.victim_address
        assert victim is not None
        line = self.lines[victim]
        if line.dirty:
            self.dram.chan_c.send(
                Release(source=self.AGENT_ID, address=victim, data=line.data), cycle
            )
            del self.lines[victim]
            mshr.state = _MshrState.EVICT_WB
            self.stats.inc("victim_writebacks")
        else:
            del self.lines[victim]
            mshr.victim_address = None
            mshr.state = _MshrState.START
            self.stats.inc("victim_drops")

    def _fetch_from_dram(self, mshr: _L2Mshr, cycle: int) -> None:
        self.dram.chan_a.send(
            Acquire(source=self.AGENT_ID, address=mshr.address, grow=Grow.NtoT),
            cycle,
        )
        mshr.state = _MshrState.FETCH
        self.stats.inc("dram_fetches")

    def _probe_for_acquire(self, mshr: _L2Mshr, line: L2Line, cycle: int) -> None:
        want_trunk = mshr.grow in (Grow.NtoT, Grow.BtoT)
        directory = line.directory
        if want_trunk:
            targets = directory.sharers - {mshr.client}
            cap = Cap.toN
        else:
            targets = (
                {directory.owner}
                if directory.owner is not None and directory.owner != mshr.client
                else set()
            )
            cap = Cap.toB
        if targets:
            mshr.awaiting_acks = set(targets)
            mshr.probe_cap = cap
            for client in targets:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=mshr.address, cap=cap),
                    cycle,
                )
            mshr.state = _MshrState.PROBE
            self.stats.inc("coherence_probes", len(targets))
        else:
            self._grant(mshr, line, cycle)

    def _after_target_probe(self, mshr: _L2Mshr, cycle: int) -> None:
        line = self._line(mshr.address)
        assert line is not None
        if mshr.kind is _MshrKind.ACQUIRE:
            self._grant(mshr, line, cycle)
        else:
            self._root_release_writeback(mshr, line, cycle)

    def _grant(self, mshr: _L2Mshr, line: L2Line, cycle: int) -> None:
        want_trunk = mshr.grow in (Grow.NtoT, Grow.BtoT)
        others = line.directory.sharers - {mshr.client}
        # Exclusive-state optimisation: a lone reader gets TRUNK clean.
        if want_trunk or not others:
            granted = Grow.NtoT
            perm = Perm.TRUNK
        else:
            granted = Grow.NtoB
            perm = Perm.BRANCH
        line.directory.grant(mshr.client, perm)
        self.links[mshr.client].d.send(
            GrantData(
                source=self.AGENT_ID,
                address=mshr.address,
                grow=granted,
                data=line.data,
                # GrantDataDirty (§6): tell the L1 the line is not persisted
                dirty=line.dirty,
            ),
            cycle,
        )
        mshr.state = _MshrState.GRANT_WAIT
        self.stats.inc("grants")
        if line.dirty:
            self.stats.inc("grants_dirty")

    # --------------------------------------------- RootRelease processing
    def _probe_for_root_release(
        self, mshr: _L2Mshr, line: Optional[L2Line], cycle: int
    ) -> None:
        if line is None:
            # Absent in the inclusive L2: no cache anywhere holds it, and
            # DRAM already has the authoritative copy; just acknowledge.
            mshr.state = _MshrState.DONE
            self.stats.inc("root_release_absent")
            return
        directory = line.directory
        if mshr.clean:
            targets = (
                {directory.owner}
                if directory.owner is not None and directory.owner != mshr.client
                else set()
            )
            cap = Cap.toB
        else:
            targets = directory.sharers - {mshr.client}
            cap = Cap.toN
        if targets:
            mshr.awaiting_acks = set(targets)
            mshr.probe_cap = cap
            for client in targets:
                self.links[client].b.send(
                    Probe(source=self.AGENT_ID, address=mshr.address, cap=cap),
                    cycle,
                )
            mshr.state = _MshrState.PROBE
            self.stats.inc("root_probes", len(targets))
        else:
            self._root_release_writeback(mshr, line, cycle)

    def _root_release_writeback(
        self, mshr: _L2Mshr, line: L2Line, cycle: int
    ) -> None:
        if mshr.inval:
            # discard semantics: no DRAM writeback, ever
            line.dirty = False
            mshr.state = _MshrState.DONE
            self.stats.inc("root_inval_discards")
            return
        if line.dirty:
            self.dram.chan_c.send(
                Release(source=self.AGENT_ID, address=mshr.address, data=line.data),
                cycle,
            )
            mshr.state = _MshrState.ROOT_WB
            self.stats.inc("root_writebacks")
        else:
            # The LLC's trivial filter: clean line, skip the DRAM writeback.
            mshr.state = _MshrState.DONE
            self.stats.inc("root_writebacks_skipped")

    def _complete(self, mshr: _L2Mshr, cycle: int) -> None:
        if mshr.kind is _MshrKind.ROOT_RELEASE:
            line = self._line(mshr.address)
            if not mshr.clean and line is not None and line.directory.idle:
                # CBO.FLUSH/CBO.INVAL invalidate the whole hierarchy (§2.6)
                del self.lines[mshr.address]
                self.stats.inc("flush_l2_invalidations")
            self.links[mshr.client].d.send(
                root_release_ack(self.AGENT_ID, mshr.address), cycle
            )
            self.stats.inc("root_release_acks")
        self._free(mshr)

    def _free(self, mshr: _L2Mshr) -> None:
        idx = self.mshrs.index(mshr)
        self.mshrs[idx] = None
        self.engine.note_progress()

    # ------------------------------------------------------------- queries
    @property
    def quiescent(self) -> bool:
        return all(m is None for m in self.mshrs) and not self.list_buffer and not (
            self._ingress
        )

    def line_dirty(self, address: int) -> Optional[bool]:
        line = self._line(address)
        return None if line is None else line.dirty

    def directory_of(self, address: int) -> Optional[DirectoryEntry]:
        line = self._line(address)
        return None if line is None else line.directory
