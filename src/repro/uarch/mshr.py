"""L1 miss status holding registers with replay queues (§3.3).

An MSHR owns one outstanding line fill: it reserves a victim way, asks the
writeback unit to evict the victim if needed, sends the Acquire, installs
the granted line (including the Skip It bit derived from
GrantData/GrantDataDirty, §6.1) and replays its RPQ in arrival order, one
request per cycle.

Secondary requests may piggy-back only if they need no more permission
than the primary (the BOOM data cache lacks AcquirePerm, §3.3): a store
cannot ride a load's MSHR.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.tilelink.permissions import Grow, Perm
from repro.uarch.requests import MemOp, MemRequest


class MshrState(enum.Enum):
    IDLE = "idle"
    EVICT_WAIT = "evict_wait"  # waiting for the WBU to free the victim way
    ACQUIRE = "acquire"  # Acquire not yet sent (channel backpressure)
    WAIT_GRANT = "wait_grant"
    REPLAY = "replay"


class Mshr:
    """One miss status holding register."""

    def __init__(self, index: int, rpq_depth: int) -> None:
        self.index = index
        self.rpq_depth = rpq_depth
        self.state = MshrState.IDLE
        self.address: Optional[int] = None  # line address
        self.want_perm = Perm.NONE
        self.victim_way = -1
        self.needs_evict = False
        self.grow: Optional[Grow] = None
        self.rpq: Deque[MemRequest] = deque()

    @property
    def busy(self) -> bool:
        return self.state is not MshrState.IDLE

    @property
    def replaying(self) -> bool:
        return self.state is MshrState.REPLAY

    def matches(self, address: int) -> bool:
        return self.busy and self.address == address

    def can_accept_secondary(self, request: MemRequest) -> bool:
        """RPQ rule of §3.3: secondary permission <= primary permission."""
        if not self.busy or self.state is MshrState.REPLAY:
            return False
        if len(self.rpq) >= self.rpq_depth:
            return False
        needed = (
            Perm.TRUNK
            if request.op in (MemOp.STORE, MemOp.CBO_ZERO)
            else Perm.BRANCH
        )
        return needed <= self.want_perm

    def allocate(
        self,
        request: MemRequest,
        line_address: int,
        want_perm: Perm,
        victim_way: int,
        needs_evict: bool,
        grow: Grow,
    ) -> None:
        if self.busy:
            raise RuntimeError("allocate into busy MSHR")
        self.address = line_address
        self.want_perm = want_perm
        self.victim_way = victim_way
        self.needs_evict = needs_evict
        self.grow = grow
        self.rpq = deque((request,))
        self.state = MshrState.EVICT_WAIT if needs_evict else MshrState.ACQUIRE

    def push_secondary(self, request: MemRequest) -> None:
        if not self.can_accept_secondary(request):
            raise RuntimeError("secondary request rejected")
        self.rpq.append(request)

    def eviction_done(self) -> None:
        if self.state is not MshrState.EVICT_WAIT:
            raise RuntimeError("eviction_done in wrong state")
        self.state = MshrState.ACQUIRE

    def acquire_sent(self) -> None:
        self.state = MshrState.WAIT_GRANT

    def granted(self) -> None:
        self.state = MshrState.REPLAY

    def pop_replay(self) -> Optional[MemRequest]:
        if self.rpq:
            return self.rpq.popleft()
        return None

    def free(self) -> None:
        self.state = MshrState.IDLE
        self.address = None
        self.want_perm = Perm.NONE
        self.victim_way = -1
        self.needs_evict = False
        self.grow = None
        self.rpq = deque()
