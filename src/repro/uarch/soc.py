"""SoC assembly: N BOOM-style cores, private L1s, shared inclusive L2, DRAM.

Mirrors the paper's experimental platform (§7.1): a dual-core SonicBOOM
with 32 KiB L1s and a shared 512 KiB inclusive L2.  ``Soc.run_programs``
is the top-level entry for the cycle-level experiments: it loads one
instruction list per core, runs the engine until every core commits its
last instruction, and returns the elapsed cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mem.dram import DramModel
from repro.mem.memory import MainMemory
from repro.sim.config import DEFAULT_SOC, SoCParams
from repro.sim.engine import Engine
from repro.tilelink.channel import BeatChannel
from repro.uarch.cpu import Core, Instr
from repro.uarch.l1 import L1DataCache
from repro.uarch.l2 import ClientLink, InclusiveL2Cache


class Soc:
    """A complete simulated system."""

    def __init__(self, params: SoCParams = DEFAULT_SOC) -> None:
        self.params = params
        self.engine = Engine()
        self.memory = MainMemory(line_bytes=params.line_bytes)
        self.dram = DramModel(
            self.engine,
            self.memory,
            latency=params.latencies.dram_latency,
            bus_bytes=params.latencies.dram_bus_bytes,
        )
        self.l2 = InclusiveL2Cache(self.engine, params, self.dram)
        self.l1s: List[L1DataCache] = []
        self.cores: List[Core] = []
        bus = params.latencies.bus_bytes
        for core_id in range(params.num_cores):
            l1 = L1DataCache(self.engine, core_id, params)
            link = ClientLink(
                a=BeatChannel(f"l1{core_id}.a", bus),
                b=BeatChannel(f"l1{core_id}.b", bus),
                c=BeatChannel(f"l1{core_id}.c", bus),
                d=BeatChannel(f"l1{core_id}.d", bus),
                e=BeatChannel(f"l1{core_id}.e", bus),
            )
            l1.connect(link.a, link.b, link.c, link.d, link.e)
            self.l2.add_client(link)
            core = Core(self.engine, core_id, l1, params)
            self.l1s.append(l1)
            self.cores.append(core)
        # Deadlock diagnostics are always on: the provider reads live
        # component state only when the watchdog actually fires, so it
        # costs nothing per cycle and needs no observability bus.
        self.engine.add_diagnostics("soc", self._diagnostics)

    def _diagnostics(self) -> Dict[str, object]:
        """Structured dump of everything in flight (deadlock reports)."""
        report: Dict[str, object] = {}
        for i, (core, l1) in enumerate(zip(self.cores, self.l1s)):
            fu = l1.flush_unit
            report[f"core{i}"] = {
                "program_head": core.head,
                "program_len": len(core.slots),
                "flush_queue": {
                    "occupancy": len(fu.queue),
                    "depth": fu.queue.depth,
                    "entries": [
                        {
                            "address": hex(e.address),
                            "kind": e.kind.value,
                            "hit": e.is_hit,
                            "dirty": e.is_dirty,
                        }
                        for e in fu.queue.entries
                    ],
                },
                "flush_counter": fu.flush_counter,
                "fshrs": [
                    {
                        "index": f.index,
                        "state": f.state.value,
                        "address": hex(f.address) if f.address is not None else None,
                    }
                    for f in fu.fshrs
                    if f.busy
                ],
                "mshrs": [
                    {
                        "index": m.index,
                        "state": m.state.value,
                        "address": hex(m.address) if m.busy else None,
                    }
                    for m in l1.mshrs
                    if m.busy
                ],
                "wbu_busy_address": (
                    hex(l1.wbu.busy_address)
                    if l1.wbu.busy_address is not None
                    else None
                ),
                "probe_busy": not l1.probe_unit.probe_rdy,
                "channels": {
                    name: len(chan)
                    for name, chan in (
                        ("a", l1.chan_a),
                        ("b", l1.chan_b),
                        ("c", l1.chan_c),
                        ("d", l1.chan_d),
                        ("e", l1.chan_e),
                    )
                    if chan is not None
                },
            }
        report["l2"] = {
            "mshrs": [
                {
                    "kind": m.kind.value,
                    "state": m.state.value,
                    "address": hex(m.address),
                    "client": m.client,
                    "awaiting_acks": sorted(m.awaiting_acks),
                }
                for m in self.l2.mshrs
                if m is not None
            ],
            "list_buffer_occupancy": len(self.l2.list_buffer),
            "ingress_occupancy": len(self.l2._ingress),
        }
        report["dram_busy"] = self.dram.busy
        return report

    # ------------------------------------------------------------- running
    def run_programs(
        self,
        programs: Sequence[List[Instr]],
        max_cycles: Optional[int] = 5_000_000,
    ) -> int:
        """Run one program per core to completion; return elapsed cycles."""
        if len(programs) > len(self.cores):
            raise ValueError(
                f"{len(programs)} programs for {len(self.cores)} cores"
            )
        for core, program in zip(self.cores, programs):
            core.run_program(program)
        start = self.engine.cycle
        cores = self.cores
        if len(cores) == 1:
            # single-core fast path: the predicate runs every stepped
            # cycle, so skip the genexpr and the `done` property call
            only = cores[0]
            predicate = lambda: only.head >= len(only.slots)  # noqa: E731
        else:
            predicate = lambda: all(c.done for c in cores)  # noqa: E731
        self.engine.run_until(predicate, max_cycles=max_cycles)
        return self.engine.cycle - start

    def drain(self, max_cycles: int = 200_000) -> None:
        """Run until every cache/DRAM transaction settles (for checkers)."""
        self.engine.run_until(self.quiescent_check, max_cycles=max_cycles)

    def quiescent_check(self) -> bool:
        return (
            all(l1.quiescent for l1 in self.l1s)
            and self.l2.quiescent
            and not self.dram.busy
        )

    # ------------------------------------------------------------- queries
    def stats_summary(self) -> Dict[str, Dict[str, int]]:
        summary: Dict[str, Dict[str, int]] = {"l2": self.l2.stats.as_dict()}
        for i, l1 in enumerate(self.l1s):
            summary[f"l1_{i}"] = l1.stats.as_dict()
            summary[f"flush_unit_{i}"] = l1.flush_unit.stats.as_dict()
        return summary

    def coherent_value(self, address: int) -> int:
        """Architecturally current 64-bit value at *address* (test oracle).

        Priority: a TRUNK L1 copy, else the L2 copy, else memory.
        """
        line = self.params.l1.line_address(address)
        offset = address - line
        for l1 in self.l1s:
            hit = l1.meta.lookup(line)
            if hit is not None and hit[1].perm.writable:
                set_idx = l1.geometry.set_index(line)
                return l1.data.read_word(set_idx, hit[0], offset)
        l2_line = self.l2.lines.get(line)
        if l2_line is not None:
            return int.from_bytes(l2_line.data[offset : offset + 8], "little")
        return int.from_bytes(
            self.memory.peek_line(line)[offset : offset + 8], "little"
        )

    def persisted_value(self, address: int) -> int:
        """64-bit value currently in main memory (the persistence domain)."""
        line = self.params.l1.line_address(address)
        offset = address - line
        return int.from_bytes(
            self.memory.peek_line(line)[offset : offset + 8], "little"
        )
