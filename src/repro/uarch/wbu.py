"""The L1 writeback unit (§3.3, §5.4.2).

Releases victim lines to the L2 on eviction.  While an eviction is in
flight, ``wb_rdy`` is low, which blocks both incoming probes and flush-
queue dequeues (the paper reuses the existing ``wb_rdy`` for the latter).
When a line is evicted, pending flush-queue entries for it are downgraded
to miss entries via ``FlushUnit.evict_invalidate``.
"""

from __future__ import annotations

from typing import Optional

from repro.tilelink.messages import Release
from repro.tilelink.permissions import Perm, Shrink


class WritebackUnit:
    """Evicts one line at a time over channel C."""

    def __init__(self, l1) -> None:
        self.l1 = l1
        self._pending_address: Optional[int] = None
        self.evictions = 0
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._obs_seq = 0

    @property
    def wb_rdy(self) -> bool:
        return self._pending_address is None

    @property
    def busy_address(self) -> Optional[int]:
        return self._pending_address

    def start_eviction(self, address: int, way: int, cycle: int) -> None:
        """Release the line at (*address*, *way*) and invalidate it.

        The flush queue is informed first (§5.4.2) so stale hit/dirty bits
        on pending entries are cleared before the line disappears.
        """
        if not self.wb_rdy:
            raise RuntimeError("eviction started while WBU busy")
        set_idx = self.l1.geometry.set_index(address)
        entry = self.l1.meta.way_entry(address, way)
        if not entry.valid or self.l1.meta.address_of(set_idx, entry) != address:
            raise RuntimeError("eviction of a non-resident line")
        shrink = Shrink.TtoN if entry.perm is Perm.TRUNK else Shrink.BtoN
        data = (
            self.l1.data.read_line(set_idx, way) if entry.dirty else None
        )
        self.l1.flush_unit.evict_invalidate(address)
        entry.invalidate()
        self._pending_address = address
        self.evictions += 1
        if self.obs is not None:
            self.obs.open_span(
                cycle,
                f"wbu:l1{self.l1.agent_id}:{address:#x}",
                "eviction",
                name="eviction",
                track=f"core{self.l1.agent_id}.wbu",
                state="release",
                address=address,
                shrink=shrink.name,
                dirty=data is not None,
            )
        self.l1.send_channel_c(
            Release(
                source=self.l1.agent_id, address=address, shrink=shrink, data=data
            ),
            cycle,
        )

    def complete(self, address: int) -> None:
        """Consume the ReleaseAck for the in-flight eviction."""
        if self._pending_address != address:
            raise RuntimeError(
                f"ReleaseAck for {address:#x}, expected "
                f"{self._pending_address!r}"
            )
        self._pending_address = None
        if self.obs is not None:
            self.obs.close_span(
                self.l1.engine.cycle, f"wbu:l1{self.l1.agent_id}:{address:#x}"
            )
        self.l1.engine.note_progress()
