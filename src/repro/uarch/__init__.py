"""Cycle-level microarchitecture models.

This package models the hardware the paper modifies: a simplified BOOM
core front-end (ROB + LSU with LDQ/STQ, §3.1-§3.2), the non-blocking L1
data cache with MSHRs, writeback unit and probe unit (§3.3), the SiFive
inclusive L2 (§3.4), and the SoC wiring.  The paper's own contribution —
the flush unit and Skip It — lives in :mod:`repro.core` and is integrated
into the L1 here.
"""

from repro.uarch.requests import MemOp, MemRequest, MemResponse
from repro.uarch.soc import Soc

__all__ = ["MemOp", "MemRequest", "MemResponse", "Soc"]
