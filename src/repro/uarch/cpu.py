"""Simplified BOOM core front-end: ROB + LSU with LDQ/STQ semantics.

The model keeps the rules that matter for the paper's mechanisms
(§3.1-§3.2, §5.1, §5.3):

* loads fire out of order as soon as they have no older unresolved
  same-line STQ dependence and no older pending fence;
* stores and CBO.X are STQ requests: they fire only when every older
  instruction has completed (the ROB head points at them), hence in
  program order;
* a CBO.X is *complete* as soon as the flush unit buffers (or drops) it —
  the ROB may commit past it while the writeback proceeds asynchronously;
* a fence completes only when every older instruction is done, the L1 has
  no in-flight fills, **and** the flush counter is zero (``flushing`` low,
  §5.3);
* a nacked request is retried a couple of cycles later, as the LSU does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.sim.stats import StatCounter
from repro.uarch.l1 import FireStatus, L1DataCache
from repro.uarch.requests import MemOp, MemRequest

RETRY_DELAY = 2


@dataclass
class Instr:
    """One instruction of a core's (pre-decoded) program."""

    op: MemOp
    address: int = 0
    data: Optional[int] = None

    @staticmethod
    def load(address: int) -> "Instr":
        return Instr(MemOp.LOAD, address)

    @staticmethod
    def store(address: int, data: int) -> "Instr":
        return Instr(MemOp.STORE, address, data)

    @staticmethod
    def clean(address: int) -> "Instr":
        return Instr(MemOp.CBO_CLEAN, address)

    @staticmethod
    def flush(address: int) -> "Instr":
        return Instr(MemOp.CBO_FLUSH, address)

    @staticmethod
    def inval(address: int) -> "Instr":
        return Instr(MemOp.CBO_INVAL, address)

    @staticmethod
    def zero(address: int) -> "Instr":
        return Instr(MemOp.CBO_ZERO, address)

    @staticmethod
    def fence() -> "Instr":
        return Instr(MemOp.FENCE)


class _Status(enum.Enum):
    WAITING = "waiting"
    FIRED = "fired"
    DONE = "done"


@dataclass
class _Slot:
    instr: Instr
    status: _Status = _Status.WAITING
    retry_at: int = 0
    done_at: Optional[int] = None  # for fixed-latency completions
    req_id: Optional[int] = None
    value: Optional[int] = None  # load result
    wait_noted: bool = False  # fence: blocked-commit already counted


class Core:
    """One hardware thread executing a straight-line memory program."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        l1: L1DataCache,
        params: SoCParams,
        rob_entries: int = 32,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.l1 = l1
        self.params = params
        self.rob_entries = rob_entries
        self.slots: List[_Slot] = []
        self.head = 0
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach
        self.finish_cycle: Optional[int] = None
        self._by_req: Dict[int, _Slot] = {}
        l1.resp_sink = self
        engine.register(self)

    # ------------------------------------------------------------- program
    def run_program(self, program: List[Instr]) -> None:
        """Load a fresh program; the engine then executes it."""
        self.slots = [_Slot(instr) for instr in program]
        self.head = 0
        self.finish_cycle = None
        self._by_req.clear()

    @property
    def done(self) -> bool:
        return self.head >= len(self.slots)

    def load_result(self, index: int) -> Optional[int]:
        """Value returned by the load at program position *index*."""
        return self.slots[index].value

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        if self.done:
            return
        self._complete_timed(cycle)
        self._fire_window(cycle)
        self._commit(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this core could act (fast-forward hook).

        Internal timed events — fixed-latency completions and nack
        retries — are reported directly.  A slot that is waiting on other
        instructions (or a fence waiting on the flush unit / MSHRs / WBU)
        is unblocked only by those events or by L1 responses, which are
        other components' events; it contributes nothing here.
        """
        if self.done:
            return None
        best: Optional[int] = None
        # Single pass mirroring _eligible: track the blocking state older
        # slots impose on younger ones instead of rescanning per slot.
        all_older_done = True
        older_fence = False
        older_stq_lines = set()
        line_of = self.params.l1.line_address
        for slot in self.slots[self.head : self.head + self.rob_entries]:
            if slot.status is _Status.FIRED:
                if slot.done_at is not None:
                    when = max(cycle + 1, slot.done_at)
                    if best is None or when < best:
                        best = when
            elif slot.status is _Status.WAITING:
                op = slot.instr.op
                if slot.retry_at > cycle + 1:
                    if best is None or slot.retry_at < best:
                        best = slot.retry_at
                elif op is MemOp.FENCE:
                    if all_older_done and self._fence_blocker() is None:
                        return cycle + 1
                elif op is MemOp.LOAD:
                    if not older_fence and (
                        line_of(slot.instr.address) not in older_stq_lines
                    ):
                        return cycle + 1
                elif all_older_done:
                    return cycle + 1
            if slot.status is not _Status.DONE:
                all_older_done = False
                op = slot.instr.op
                if op is MemOp.FENCE:
                    older_fence = True
                elif op.is_stq:
                    older_stq_lines.add(line_of(slot.instr.address))
        return best

    def _complete_timed(self, cycle: int) -> None:
        for slot in self.slots[self.head : self.head + self.rob_entries]:
            if (
                slot.status is _Status.FIRED
                and slot.done_at is not None
                and cycle >= slot.done_at
            ):
                slot.status = _Status.DONE
                self.engine.note_progress()

    def _fire_window(self, cycle: int) -> None:
        fired = 0
        window = self.slots[self.head : self.head + self.rob_entries]
        for offset, slot in enumerate(window):
            if fired >= self.params.lsu_fire_width:
                break
            if slot.status is not _Status.WAITING or cycle < slot.retry_at:
                continue
            index = self.head + offset
            if slot.instr.op is MemOp.FENCE:
                self._try_fence(index, slot, cycle)
                continue
            if not self._eligible(index, slot):
                continue
            self._fire(slot, cycle)
            fired += 1

    def _eligible(self, index: int, slot: _Slot) -> bool:
        instr = slot.instr
        if instr.op is MemOp.LOAD:
            line = self.params.l1.line_address(instr.address)
            for older in self.slots[self.head : index]:
                if older.status is _Status.DONE:
                    continue
                o = older.instr
                if o.op is MemOp.FENCE:
                    return False
                if o.op.is_stq and o.op is not MemOp.FENCE:
                    if self.params.l1.line_address(o.address) == line:
                        return False
            return True
        # STQ requests (stores, CBO.X) fire at the ROB head, in order
        return all(
            older.status is _Status.DONE for older in self.slots[self.head : index]
        )

    def _fence_blocker(self) -> Optional[str]:
        """What keeps a fence from committing right now (§5.3), if anything."""
        if self.l1.flush_unit.flushing:
            return "flush"
        if any(m.busy for m in self.l1.mshrs):
            return "mshr"
        if not self.l1.wbu.wb_rdy:
            return "wbu"
        return None

    def _fence_ready(self, index: int) -> bool:
        """Pure form of the fence commit conditions (for the event horizon)."""
        return (
            all(
                older.status is _Status.DONE
                for older in self.slots[self.head : index]
            )
            and self._fence_blocker() is None
        )

    def _try_fence(self, index: int, slot: _Slot, cycle: int) -> None:
        """Fence commit conditions (§5.3): prior ops done, no pending flushes."""
        if not all(
            older.status is _Status.DONE for older in self.slots[self.head : index]
        ):
            return
        blocker = self._fence_blocker()
        if blocker is not None:
            # Counted once per fence, not once per waiting cycle, so the
            # stat is identical whether idle cycles are stepped or skipped
            # by the engine's fast-forward.
            if not slot.wait_noted:
                slot.wait_noted = True
                self.stats.inc(f"fence_wait_{blocker}")
            return
        slot.status = _Status.DONE
        self.stats.inc("fences")
        if self.obs is not None:
            self.obs.emit(
                cycle,
                "core",
                "fence_commit",
                track=f"core{self.core_id}",
                index=index,
            )
        self.engine.note_progress()

    def _fire(self, slot: _Slot, cycle: int) -> None:
        instr = slot.instr
        request = MemRequest(op=instr.op, address=instr.address, data=instr.data)
        if self.obs is not None:
            # ambient cause: spans opened while the L1 handles this fire
            # (flush-queue entries, MSHRs) record which request caused them
            with self.obs.causal(f"core{self.core_id}.req{request.req_id}"):
                outcome = self.l1.fire(request, cycle)
        else:
            outcome = self.l1.fire(request, cycle)
        if outcome.status is FireStatus.NACK:
            slot.retry_at = cycle + RETRY_DELAY
            self.stats.inc("nacks")
            return
        self.engine.note_progress()
        slot.status = _Status.FIRED
        slot.req_id = request.req_id
        if outcome.status is FireStatus.OK_NOW:
            if instr.op is MemOp.LOAD:
                slot.value = outcome.value
                slot.done_at = cycle + self.params.latencies.l1_hit
            else:
                # stores/CBOs are complete once the cache accepts them
                slot.done_at = cycle + 1
        else:  # OK_LATER: load data arrives via mem_response
            self._by_req[request.req_id] = slot
        self.stats.inc(instr.op.value.replace(".", "_"))

    def _commit(self, cycle: int) -> None:
        while self.head < len(self.slots) and (
            self.slots[self.head].status is _Status.DONE
        ):
            self.head += 1
            self.engine.note_progress()
        if self.done and self.finish_cycle is None:
            self.finish_cycle = cycle
            if self.obs is not None:
                self.obs.emit(
                    cycle,
                    "core",
                    "program_done",
                    track=f"core{self.core_id}",
                    instructions=len(self.slots),
                )

    # --------------------------------------------------------- L1 callback
    def mem_response(self, req_id: int, value: int) -> None:
        slot = self._by_req.pop(req_id, None)
        if slot is None:
            return
        slot.value = value
        slot.status = _Status.DONE
        self.engine.note_progress()
