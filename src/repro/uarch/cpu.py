"""Simplified BOOM core front-end: ROB + LSU with LDQ/STQ semantics.

The model keeps the rules that matter for the paper's mechanisms
(§3.1-§3.2, §5.1, §5.3):

* loads fire out of order as soon as they have no older unresolved
  same-line STQ dependence and no older pending fence;
* stores and CBO.X are STQ requests: they fire only when every older
  instruction has completed (the ROB head points at them), hence in
  program order;
* a CBO.X is *complete* as soon as the flush unit buffers (or drops) it —
  the ROB may commit past it while the writeback proceeds asynchronously;
* a fence completes only when every older instruction is done, the L1 has
  no in-flight fills, **and** the flush counter is zero (``flushing`` low,
  §5.3);
* a nacked request is retried a couple of cycles later, as the LSU does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.sim.stats import StatCounter
from repro.uarch.l1 import FireStatus, L1DataCache
from repro.uarch.requests import MemOp, MemRequest

RETRY_DELAY = 2

#: per-op stat key, precomputed once ("cbo.clean" -> "cbo_clean")
_STAT_KEY = {op: op.value.replace(".", "_") for op in MemOp}


@dataclass
class Instr:
    """One instruction of a core's (pre-decoded) program."""

    op: MemOp
    address: int = 0
    data: Optional[int] = None
    length: int = 0  # byte length of a CBO.RANGE sweep

    @staticmethod
    def load(address: int) -> "Instr":
        return Instr(MemOp.LOAD, address)

    @staticmethod
    def store(address: int, data: int) -> "Instr":
        return Instr(MemOp.STORE, address, data)

    @staticmethod
    def clean(address: int) -> "Instr":
        return Instr(MemOp.CBO_CLEAN, address)

    @staticmethod
    def flush(address: int) -> "Instr":
        return Instr(MemOp.CBO_FLUSH, address)

    @staticmethod
    def inval(address: int) -> "Instr":
        return Instr(MemOp.CBO_INVAL, address)

    @staticmethod
    def zero(address: int) -> "Instr":
        return Instr(MemOp.CBO_ZERO, address)

    @staticmethod
    def clean_range(address: int, length: int) -> "Instr":
        return Instr(MemOp.CBO_RANGE_CLEAN, address, length=length)

    @staticmethod
    def flush_range(address: int, length: int) -> "Instr":
        return Instr(MemOp.CBO_RANGE_FLUSH, address, length=length)

    @staticmethod
    def inval_range(address: int, length: int) -> "Instr":
        return Instr(MemOp.CBO_RANGE_INVAL, address, length=length)

    @staticmethod
    def fence() -> "Instr":
        return Instr(MemOp.FENCE)


class _Status(enum.Enum):
    WAITING = "waiting"
    FIRED = "fired"
    DONE = "done"


@dataclass(slots=True)
class _Slot:
    instr: Instr
    op: MemOp  # == instr.op, denormalized for the per-cycle window walks
    line: int = -1  # line address of instr.address (valid for memory ops)
    lines: Optional[Tuple[int, ...]] = None  # covered lines of a CBO.RANGE
    status: _Status = _Status.WAITING
    retry_at: int = 0
    done_at: Optional[int] = None  # for fixed-latency completions
    req_id: Optional[int] = None
    value: Optional[int] = None  # load result
    wait_noted: bool = False  # fence: blocked-commit already counted


class Core:
    """One hardware thread executing a straight-line memory program."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        l1: L1DataCache,
        params: SoCParams,
        rob_entries: int = 32,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.l1 = l1
        self.params = params
        self.rob_entries = rob_entries
        self.slots: List[_Slot] = []
        self.head = 0
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach
        self.finish_cycle: Optional[int] = None
        self._by_req: Dict[int, _Slot] = {}
        self._line_of = params.l1.line_address
        # count of FIRED slots with a fixed-latency done_at pending; all
        # of them live inside the ROB window (commit stops at the first
        # non-done slot, so fired slots can never fall behind the head)
        self._timed_inflight = 0
        # index of the last LOAD in the program: past it, a blocked
        # window can stop scanning early (only loads fire out of order)
        self._max_load_index = -1
        l1.resp_sink = self
        engine.register(self)

    # ------------------------------------------------------------- program
    def run_program(self, program: List[Instr]) -> None:
        """Load a fresh program; the engine then executes it."""
        line_of = self._line_of
        line_bytes = self.params.l1.line_bytes
        self.slots = []
        for instr in program:
            slot = _Slot(instr, instr.op, line_of(instr.address))
            if instr.op.is_cbo_range:
                # younger loads must order against every covered line,
                # not just the base line
                last = line_of(instr.address + instr.length - 1)
                slot.lines = tuple(range(slot.line, last + 1, line_bytes))
            self.slots.append(slot)
        self.head = 0
        self.finish_cycle = None
        self._by_req.clear()
        self._timed_inflight = 0
        self._max_load_index = -1
        for index, instr in enumerate(program):
            if instr.op is MemOp.LOAD:
                self._max_load_index = index

    @property
    def done(self) -> bool:
        return self.head >= len(self.slots)

    def load_result(self, index: int) -> Optional[int]:
        """Value returned by the load at program position *index*."""
        return self.slots[index].value

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        """One cycle: complete timed ops, fire the window, commit.

        A single forward pass over the ROB window fuses what used to be
        separate complete/fire sweeps.  Eligibility of a slot depends
        only on *older* slots, and walking in program order applies an
        older slot's completion (or fence commit) before any younger
        slot checks it — exactly the order the two-pass version
        produced — while the blocking state (``all_older_done``, older
        fence, older STQ lines) is carried forward instead of rescanned
        per slot (the old O(n²) ``_eligible`` walk).
        """
        slots = self.slots
        head = self.head
        if head >= len(slots):
            return
        waiting = _Status.WAITING
        fired_st = _Status.FIRED
        done_st = _Status.DONE
        fence_op = MemOp.FENCE
        load_op = MemOp.LOAD
        width = self.params.lsu_fire_width
        max_load = self._max_load_index
        note_progress = self.engine.note_progress
        end = head + self.rob_entries
        if end > len(slots):
            end = len(slots)
        fired = 0
        timed_ahead = self._timed_inflight
        all_older_done = True
        older_fence = False
        older_stq_lines = None
        for index in range(head, end):
            # Nothing ahead can act: no timed completions left in the
            # window and no slot can fire (width exhausted, or firing is
            # blocked and no out-of-order load remains ahead).
            if timed_ahead <= 0 and (
                fired >= width
                or (not all_older_done and (older_fence or index > max_load))
            ):
                break
            slot = slots[index]
            status = slot.status
            if status is fired_st:
                done_at = slot.done_at
                if done_at is not None:
                    timed_ahead -= 1
                    if cycle >= done_at:
                        slot.status = status = done_st
                        self._timed_inflight -= 1
                        note_progress()
            elif status is waiting and fired < width and cycle >= slot.retry_at:
                op = slot.op
                if op is fence_op:
                    if all_older_done:
                        self._try_fence(index, slot, cycle)
                        status = slot.status
                elif op is load_op:
                    if not older_fence and (
                        older_stq_lines is None
                        or slot.line not in older_stq_lines
                    ):
                        self._fire(slot, cycle)
                        status = slot.status
                        fired += 1
                elif all_older_done:
                    self._fire(slot, cycle)
                    status = slot.status
                    fired += 1
            if status is not done_st:
                all_older_done = False
                op = slot.op
                if op is fence_op:
                    older_fence = True
                elif op.is_stq:
                    if older_stq_lines is None:
                        older_stq_lines = set()
                    if slot.lines is not None:
                        older_stq_lines.update(slot.lines)
                    else:
                        older_stq_lines.add(slot.line)
        self._commit(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this core could act (fast-forward hook).

        Timed completions of fired slots and nack retries of slots that
        are *currently eligible to fire* are reported.  A slot blocked by
        older instructions contributes nothing — it is unblocked only by
        an older completion, and every such completion is itself an
        event: timed ones are reported here, L1 grants and flush acks by
        the responding components.  The engine therefore steps on the
        unblocking cycle, re-evaluates this hook, and the formerly
        blocked slot's retry is picked up then; skipped cycles stay
        strict no-ops.
        """
        slots = self.slots
        head = self.head
        if head >= len(slots):
            return None
        waiting = _Status.WAITING
        fired_st = _Status.FIRED
        done_st = _Status.DONE
        fence_op = MemOp.FENCE
        load_op = MemOp.LOAD
        max_load = self._max_load_index
        floor = cycle + 1
        best: Optional[int] = None
        # Single pass mirroring tick's fused walk: track the blocking
        # state older slots impose on younger ones and bail out once no
        # timed completion remains ahead and nothing younger can fire.
        timed_ahead = self._timed_inflight
        all_older_done = True
        older_fence = False
        older_stq_lines = None
        end = head + self.rob_entries
        if end > len(slots):
            end = len(slots)
        for index in range(head, end):
            if (
                timed_ahead <= 0
                and not all_older_done
                and (older_fence or index > max_load)
            ):
                break
            slot = slots[index]
            status = slot.status
            if status is fired_st:
                done_at = slot.done_at
                if done_at is not None:
                    timed_ahead -= 1
                    when = done_at if done_at > floor else floor
                    if best is None or when < best:
                        best = when
            elif status is waiting:
                op = slot.op
                if op is fence_op:
                    if all_older_done and self._fence_blocker() is None:
                        return floor
                elif op is load_op:
                    if not older_fence and (
                        older_stq_lines is None
                        or slot.line not in older_stq_lines
                    ):
                        retry = slot.retry_at
                        if retry <= floor:
                            return floor
                        if best is None or retry < best:
                            best = retry
                elif all_older_done:
                    retry = slot.retry_at
                    if retry <= floor:
                        return floor
                    if best is None or retry < best:
                        best = retry
            if status is not done_st:
                all_older_done = False
                op = slot.op
                if op is fence_op:
                    older_fence = True
                elif op.is_stq and index < max_load:
                    # the line set only gates younger *loads*; past the
                    # program's last load nothing ever consults it
                    if older_stq_lines is None:
                        older_stq_lines = set()
                    if slot.lines is not None:
                        older_stq_lines.update(slot.lines)
                    else:
                        older_stq_lines.add(slot.line)
        return best

    def _eligible(self, index: int, slot: _Slot) -> bool:
        """Reference form of the fire-ordering rules (§3.1-§3.2).

        ``tick`` enforces the same rules with carried-forward blocking
        state instead of this per-slot rescan; the method is kept as the
        readable specification and is pinned by the load-bypass ordering
        unit tests.
        """
        instr = slot.instr
        if instr.op is MemOp.LOAD:
            line = self.params.l1.line_address(instr.address)
            for older in self.slots[self.head : index]:
                if older.status is _Status.DONE:
                    continue
                o = older.instr
                if o.op is MemOp.FENCE:
                    return False
                if o.op.is_stq:
                    if o.op.is_cbo_range:
                        base = self.params.l1.line_address(o.address)
                        last = self.params.l1.line_address(
                            o.address + o.length - 1
                        )
                        if base <= line <= last:
                            return False
                    elif self.params.l1.line_address(o.address) == line:
                        return False
            return True
        # STQ requests (stores, CBO.X) fire at the ROB head, in order
        return all(
            older.status is _Status.DONE for older in self.slots[self.head : index]
        )

    def _fence_blocker(self) -> Optional[str]:
        """What keeps a fence from committing right now (§5.3), if anything."""
        if self.l1.flush_unit.flushing:
            return "flush"
        if any(m.busy for m in self.l1.mshrs):
            return "mshr"
        if not self.l1.wbu.wb_rdy:
            return "wbu"
        return None

    def _try_fence(self, index: int, slot: _Slot, cycle: int) -> None:
        """Fence commit conditions (§5.3): prior ops done, no pending flushes.

        The caller (``tick``'s fused walk) guarantees every older slot
        is already DONE; only the flush/MSHR/WBU blockers remain.
        """
        blocker = self._fence_blocker()
        if blocker is not None:
            # Counted once per fence, not once per waiting cycle, so the
            # stat is identical whether idle cycles are stepped or skipped
            # by the engine's fast-forward.
            if not slot.wait_noted:
                slot.wait_noted = True
                self.stats.inc(f"fence_wait_{blocker}")
            return
        slot.status = _Status.DONE
        self.stats.inc("fences")
        if self.obs is not None:
            self.obs.emit(
                cycle,
                "core",
                "fence_commit",
                track=f"core{self.core_id}",
                index=index,
            )
        self.engine.note_progress()

    def _fire(self, slot: _Slot, cycle: int) -> None:
        instr = slot.instr
        request = MemRequest(
            op=instr.op,
            address=instr.address,
            data=instr.data,
            length=instr.length,
        )
        if self.obs is not None:
            # ambient cause: spans opened while the L1 handles this fire
            # (flush-queue entries, MSHRs) record which request caused them
            with self.obs.causal(f"core{self.core_id}.req{request.req_id}"):
                outcome = self.l1.fire(request, cycle)
        else:
            outcome = self.l1.fire(request, cycle)
        if outcome.status is FireStatus.NACK:
            slot.retry_at = cycle + RETRY_DELAY
            self.stats.inc("nacks")
            return
        self.engine.note_progress()
        slot.status = _Status.FIRED
        slot.req_id = request.req_id
        if outcome.status is FireStatus.OK_NOW:
            if instr.op is MemOp.LOAD:
                slot.value = outcome.value
                slot.done_at = cycle + self.params.latencies.l1_hit
            else:
                # stores/CBOs are complete once the cache accepts them
                slot.done_at = cycle + 1
            self._timed_inflight += 1
        else:  # OK_LATER: load data arrives via mem_response
            self._by_req[request.req_id] = slot
        self.stats.inc(_STAT_KEY[instr.op])

    def _commit(self, cycle: int) -> None:
        while self.head < len(self.slots) and (
            self.slots[self.head].status is _Status.DONE
        ):
            self.head += 1
            self.engine.note_progress()
        if self.done and self.finish_cycle is None:
            self.finish_cycle = cycle
            if self.obs is not None:
                self.obs.emit(
                    cycle,
                    "core",
                    "program_done",
                    track=f"core{self.core_id}",
                    instructions=len(self.slots),
                )

    # --------------------------------------------------------- L1 callback
    def mem_response(self, req_id: int, value: int) -> None:
        slot = self._by_req.pop(req_id, None)
        if slot is None:
            return
        slot.value = value
        slot.status = _Status.DONE
        self.engine.note_progress()
