"""Figure 12: eight-thread writeback latency across architectures (§7.3).

Paper's claims: with 8 threads the Intel clflush gap only appears above
16 KiB; the SonicBOOM outperforms the other platforms across nearly all
sizes.
"""

import pytest

from repro.bench.micro import run_fig12, rows_by_series

KIB = 1024


@pytest.mark.figure(12)
def test_fig12_comparative_eight_threads(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig12(quick=False, repeats=1), rounds=1, iterations=1
    )
    series = rows_by_series(rows)

    def curve(name):
        return {r.size_bytes: r.median_cycles for r in series[name]}

    boom = curve("SonicBOOM cbo.flush")
    intel_clflush = curve("intel clflush")
    intel_opt = curve("intel clflushopt")

    assert_shape(
        intel_clflush[4 * KIB] < 6 * intel_opt[4 * KIB],
        "at 8 threads the clflush gap is muted at small sizes",
    )
    assert_shape(
        intel_clflush[32 * KIB] > 4 * intel_opt[32 * KIB],
        "Intel clflush still degrades at 32 KiB with 8 threads",
    )
    for size in (4 * KIB, 16 * KIB, 32 * KIB):
        others = [
            c[size]
            for name, s in series.items()
            if not name.startswith("SonicBOOM")
            for c in [{r.size_bytes: r.median_cycles for r in s}]
            if size in c
        ]
        assert_shape(
            boom[size] <= min(others) * 1.5,
            f"SonicBOOM competitive at {size} bytes with 8 threads",
        )
