"""Figure 15: throughput vs update percentage (§7.4).

Paper's claims: throughput falls as the update fraction rises (updates
add mandatory writebacks); the filters keep their relative order across
the sweep.
"""

import pytest

from repro.bench.structures import run_fig15


@pytest.mark.figure(15)
def test_fig15_update_sweep_hashtable(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig15(
            quick=True,
            structures=["hashtable"],
            optimizers=["plain", "skipit"],
            update_percents=[0, 20, 100],
            duration=60_000,
        ),
        rounds=1,
        iterations=1,
    )
    skipit = {
        r.update_percent: r.throughput_mops for r in rows if r.optimizer == "skipit"
    }
    plain = {
        r.update_percent: r.throughput_mops for r in rows if r.optimizer == "plain"
    }
    assert_shape(
        skipit[0] > skipit[100], "throughput falls with update percentage"
    )
    for update in (0, 20, 100):
        assert_shape(
            skipit[update] > plain[update],
            f"Skip It above plain at {update}% updates",
        )


@pytest.mark.figure(15)
def test_fig15_order_stable_across_sweep(benchmark, assert_shape):
    """Filters keep their relative order across the whole update sweep,
    and every series declines as updates (mandatory writebacks) grow."""
    rows = benchmark.pedantic(
        lambda: run_fig15(
            quick=True,
            structures=["skiplist"],
            optimizers=["plain", "skipit"],
            update_percents=[0, 20, 100],
            duration=60_000,
        ),
        rounds=1,
        iterations=1,
    )
    tp = {
        (r.optimizer, r.update_percent): r.throughput_mops for r in rows
    }
    for update in (0, 20, 100):
        assert_shape(
            tp[("skipit", update)] > tp[("plain", update)],
            f"skipit above plain at {update}% updates",
        )
    assert_shape(
        tp[("skipit", 0)] >= tp[("skipit", 100)],
        "throughput declines as the update fraction grows",
    )
