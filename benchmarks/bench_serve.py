"""Figure 19: serving tier — p99 ack latency vs offered load.

Not a paper figure — the claims under test are the serving tier's
headline: open-loop load pushed past the store's capacity grows the
client queue without bound until admission control sheds, and Skip It's
cheaper flush path pushes the knee of the saturation curve to the right
of the plain optimizer's (more goodput, less shedding, lower tail).

Points run with the runner's own per-point seeds so the rows asserted
here are the same deterministic rows the committed baselines hold.
"""

import pytest

from repro.bench.runner import point_seed
from repro.bench.serve import run_fig19


def _point(optimizer, load, duration=30_000):
    """One fig-19 cell, seeded exactly as the parallel runner seeds it."""
    (row,) = run_fig19(
        quick=True,
        optimizers=[optimizer],
        offered_loads=[load],
        duration=duration,
        seed=point_seed(19, f"{optimizer},load={load:g}"),
    )
    return row


@pytest.mark.figure(19)
def test_fig19_load_saturates_the_queue(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: [_point("skipit", load) for load in (8.0, 32.0)],
        rounds=1,
        iterations=1,
    )
    queue = {r.offered_load: r.queue_p99 for r in rows}
    assert_shape(
        queue[32.0] > queue[8.0] > 0,
        f"queueing delay rises past the knee: {queue}",
    )
    for r in rows:
        assert_shape(
            r.ack_p99 >= r.ack_p50,
            f"load={r.offered_load:g}: percentiles ordered",
        )
        assert_shape(
            r.generated >= r.completed + r.shed,
            f"load={r.offered_load:g}: request accounting closes",
        )
    low, high = (rows[0], rows[1])
    assert_shape(
        low.shed == 0 and low.backpressure_engagements == 0,
        f"no shedding below the knee: shed={low.shed}, "
        f"bp={low.backpressure_engagements}",
    )
    assert_shape(
        high.shed > 0 and high.backpressure_engagements > 0,
        "admission control engages past saturation: "
        f"shed={high.shed}, bp={high.backpressure_engagements}",
    )


@pytest.mark.figure(19)
def test_fig19_skipit_pushes_the_knee_right(benchmark, assert_shape):
    plain, skipit = benchmark.pedantic(
        lambda: [_point(opt, 32.0) for opt in ("plain", "skipit")],
        rounds=1,
        iterations=1,
    )
    assert_shape(
        skipit.completed > plain.completed,
        f"skipit goodput above plain at overload: "
        f"{skipit.completed} vs {plain.completed}",
    )
    assert_shape(
        skipit.shed < plain.shed,
        f"skipit sheds less at overload: {skipit.shed} vs {plain.shed}",
    )
    assert_shape(
        skipit.ack_p99 < plain.ack_p99,
        f"skipit ack p99 below plain at overload: "
        f"{skipit.ack_p99} vs {plain.ack_p99}",
    )
    assert_shape(
        skipit.snapshot_reads > 0,
        "the analytics tenant is served from checkpoints: "
        f"snapshot_reads={skipit.snapshot_reads}",
    )
