"""Figure 17: durable-store throughput vs group-commit x optimizer.

Not a paper figure — the claims under test are the ones the subsystem
exists to demonstrate: group commit amortizes fences (fence count falls
~1/batch), and Skip It removes the redundant log-tail writebacks that
plain re-issues every clean (cbo_issued collapses, throughput rises).
"""

import pytest

from repro.bench.store import run_fig17


@pytest.mark.figure(17)
def test_fig17_group_commit_amortizes_fences(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig17(
            quick=True,
            optimizers=["plain"],
            group_commits=[1, 8, 64],
            duration=40_000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    fences = {r.group_commit: r.fences for r in rows}
    assert_shape(
        fences[1] > 3 * fences[8] > 9 * fences[64],
        f"fences fall roughly with batch size: {fences}",
    )
    tp = {r.group_commit: r.throughput_mops for r in rows}
    assert_shape(
        tp[64] > tp[1],
        f"batching pays despite identical log traffic: {tp}",
    )


@pytest.mark.figure(17)
def test_fig17_skipit_drops_redundant_log_writebacks(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig17(
            quick=True,
            optimizers=["plain", "skipit"],
            group_commits=[8, 64],
            duration=40_000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    cells = {(r.optimizer, r.group_commit): r for r in rows}
    for gc in (8, 64):
        plain, skipit = cells[("plain", gc)], cells[("skipit", gc)]
        assert_shape(
            skipit.cbo_issued < plain.cbo_issued / 2,
            f"gc={gc}: Skip It issues far fewer CBOs "
            f"({skipit.cbo_issued} vs {plain.cbo_issued})",
        )
        assert_shape(
            skipit.cbo_skipped > 0,
            f"gc={gc}: the hardware filter actually fired",
        )
        assert_shape(
            skipit.throughput_mops > plain.throughput_mops,
            f"gc={gc}: the skipped writebacks buy throughput "
            f"({skipit.throughput_mops:.3f} vs {plain.throughput_mops:.3f})",
        )
        assert_shape(
            abs(skipit.fences - plain.fences) <= max(2, plain.fences // 10),
            f"gc={gc}: fence counts comparable (same commit cadence)",
        )
