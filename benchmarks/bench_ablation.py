"""Ablations of the design choices DESIGN.md §5 calls out.

Not a paper figure: these quantify what each microarchitectural piece of
the flush unit buys, using the cycle-level model.
"""

import pytest

from repro.sim.config import FlushUnitParams, SoCParams
from repro.workloads.redundant import redundant_writeback_latency
from repro.workloads.sweep import writeback_sweep

KIB = 1024


def params_with_flush_unit(**kwargs) -> SoCParams:
    defaults = dict(
        num_fshrs=8, flush_queue_depth=16, coalesce=True, wide_data_array=True
    )
    defaults.update(kwargs)
    return SoCParams(flush_unit=FlushUnitParams(**defaults))


@pytest.mark.figure(0)
def test_ablation_fshr_count(benchmark, assert_shape):
    """8 FSHRs (paper) vs 1: asynchrony across FSHRs hides latency."""

    def run():
        results = {}
        for fshrs in (1, 8):
            params = params_with_flush_unit(num_fshrs=fshrs)
            results[fshrs] = writeback_sweep(
                4 * KIB, repeats=1, params=params
            ).median
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        results[8] < results[1] / 2,
        f"8 FSHRs should overlap writebacks ({results})",
    )


@pytest.mark.figure(0)
def test_ablation_flush_queue_depth(benchmark, assert_shape):
    """A deep flush queue decouples the LSU from writeback latency."""

    def run():
        results = {}
        for depth in (1, 16):
            params = params_with_flush_unit(flush_queue_depth=depth)
            results[depth] = writeback_sweep(
                4 * KIB, repeats=1, params=params
            ).median
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        results[16] <= results[1],
        f"deeper queue never hurts, usually helps ({results})",
    )


@pytest.mark.figure(0)
def test_ablation_wide_data_array(benchmark, assert_shape):
    """The paper widens the data array to fill an FSHR buffer in 1 cycle."""

    def run():
        results = {}
        for wide in (False, True):
            params = params_with_flush_unit(wide_data_array=wide)
            results[wide] = writeback_sweep(
                4 * KIB, repeats=1, params=params
            ).median
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        results[True] <= results[False],
        f"wide array at least matches word-per-cycle fills ({results})",
    )


@pytest.mark.figure(0)
def test_ablation_coalescing(benchmark, assert_shape):
    """Queue coalescing absorbs redundant same-line CBO.X (§5.3)."""

    def run():
        results = {}
        for coalesce in (False, True):
            params = params_with_flush_unit(coalesce=coalesce).with_skip_it(False)
            results[coalesce] = redundant_writeback_latency(
                KIB, skip_it=False, repeats=1, params=params
            ).median
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        results[True] <= results[False],
        f"coalescing never hurts redundant streams ({results})",
    )


@pytest.mark.figure(0)
def test_ablation_l2_trivial_skip_vs_l1_skip(benchmark, assert_shape):
    """The LLC's dirty-bit filter alone (naive) vs adding the L1 skip bit:
    Skip It saves the queue/FSHR/L2 round trip on top (§7.4)."""

    def run():
        naive = redundant_writeback_latency(KIB, skip_it=False, repeats=1)
        skip = redundant_writeback_latency(KIB, skip_it=True, repeats=1)
        return naive.median, skip.median

    naive, skip = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(skip < naive, "L1 skip bit improves on the L2-only filter")


@pytest.mark.figure(0)
def test_ablation_deeper_hierarchy_grows_skip_savings(benchmark, assert_shape):
    """§7.4: 'A deeper cache hierarchy (i.e. L3 or L4) could show greater
    improvements due to the increased latencies.'  Measured on the timing
    model: the skipit-over-plain throughput gain grows when a victim L3
    lengthens every non-filtered writeback's path."""
    from repro.sim.config import CacheGeometry
    from repro.workloads.datastructs import DataStructureBenchmark
    import repro.workloads.datastructs as ds_mod
    from repro.timing.params import TimingParams

    def gain(with_l3):
        results = {}
        for optimizer in ("plain", "skipit"):
            bench_obj = DataStructureBenchmark(
                "hashtable", "automatic", optimizer, key_range=1024
            )
            # rebuild the timing params with/without an L3
            original_run = bench_obj.run

            def patched_run(duration=60_000, warmup_ops=50):
                import random
                from repro.persist.api import PMemView
                from repro.persist.flushopt import make_optimizer
                from repro.persist.heap import SimHeap
                from repro.persist.policies import make_policy
                from repro.persist.structures import STRUCTURES
                from repro.timing.scheduler import VirtualTimeScheduler
                from repro.timing.system import TimingSystem

                params = TimingParams(
                    num_threads=2,
                    skip_it=bench_obj.skip_it,
                    l3=CacheGeometry(size_bytes=2 * 1024 * 1024, ways=8)
                    if with_l3
                    else None,
                )
                system = TimingSystem(params)
                heap = SimHeap()
                opt = make_optimizer(bench_obj.optimizer_name, heap)
                policy = make_policy(bench_obj.policy_name)
                structure = STRUCTURES["hashtable"](
                    heap, field_stride=opt.field_stride, num_buckets=256
                )
                views = [PMemView(t, policy, opt) for t in system.threads]
                structure.initialize(views[0])
                prefill = PMemView(views[0].ctx, make_policy("none"), opt)
                rng = random.Random(1)
                for key in rng.sample(range(1, 1025), 512):
                    structure.insert(prefill, key)
                system.persist_all()
                opt.declare_persisted(system)
                views[0].ctx.now = 0
                views[0].ctx.outstanding.clear()
                steps = [
                    bench_obj._make_step(structure, view, 0.05, 7 * tid)
                    for tid, view in enumerate(views)
                ]
                result = VirtualTimeScheduler(system).run(
                    steps, duration=duration, warmup=warmup_ops
                )
                return result.throughput() / 1e6

            results[optimizer] = patched_run()
        return results["skipit"] / results["plain"]

    def run():
        return gain(with_l3=False), gain(with_l3=True)

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        deep > shallow,
        f"Skip It gain should grow with hierarchy depth "
        f"({shallow:.2f}x shallow vs {deep:.2f}x deep)",
    )
