"""Figure 16: BST throughput vs FliT hash-table size (§7.4).

Paper's claim: the FliT hash table's size materially moves BST
throughput on a cache-constrained SoC, while Skip It needs no table at
all and sits at/above the best FliT configuration.
"""

import pytest

from repro.bench.structures import run_fig16


@pytest.mark.figure(16)
def test_fig16_table_size_sensitivity(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig16(
            quick=False,
            table_sizes=[256, 4096, 65_536],
            duration=60_000,
            key_range=10_000,
        ),
        rounds=1,
        iterations=1,
    )
    flit = {
        r.optimizer: r.throughput_mops
        for r in rows
        if r.optimizer.startswith("flit-hashtable")
    }
    skipit = next(r for r in rows if r.optimizer == "skipit").throughput_mops
    best = max(flit.values())
    worst = min(flit.values())
    assert_shape(
        best / worst > 1.05,
        f"table size moves throughput materially ({flit})",
    )
    assert_shape(
        skipit >= best * 0.9,
        f"Skip It ({skipit:.3f}) at/above best FliT config ({best:.3f})",
    )
