"""Figure 11: single-thread writeback latency across architectures (§7.3).

Paper's claims: Intel clflush degrades dramatically at/above 4 KiB;
clflushopt is usually the best x86 flush; AMD's clflush and clflushopt
are nearly identical; SonicBOOM CBO.X is competitive; Graviton3 grows
sub-linearly and wins beyond ~4 KiB.
"""

import pytest

from repro.bench.micro import run_fig11, rows_by_series

KIB = 1024


@pytest.mark.figure(11)
def test_fig11_comparative_single_thread(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig11(quick=False, repeats=1), rounds=1, iterations=1
    )
    series = rows_by_series(rows)

    def curve(name):
        return {r.size_bytes: r.median_cycles for r in series[name]}

    boom = curve("SonicBOOM cbo.flush")
    intel_clflush = curve("intel clflush")
    intel_opt = curve("intel clflushopt")
    amd_clflush = curve("amd clflush")
    amd_opt = curve("amd clflushopt")
    graviton = curve("graviton3 dccivac")

    assert_shape(
        intel_clflush[32 * KIB] > 10 * intel_opt[32 * KIB],
        "Intel clflush blows up at large sizes",
    )
    assert_shape(
        abs(amd_clflush[4 * KIB] - amd_opt[4 * KIB]) < 0.05 * amd_opt[4 * KIB],
        "AMD clflush == clflushopt",
    )
    assert_shape(
        boom[32 * KIB] < intel_clflush[32 * KIB],
        "SonicBOOM beats Intel clflush at large sizes",
    )
    assert_shape(
        graviton[32 * KIB] < intel_clflush[32 * KIB],
        "Graviton's sub-linear curve wins over Intel clflush at 32 KiB",
    )
    assert_shape(
        boom[64] < 2 * min(intel_opt[64], amd_opt[64], graviton[64]),
        "single-line CBO.X is competitive with commercial flushes",
    )
