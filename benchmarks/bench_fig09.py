"""Figure 9: CBO.X latency vs writeback size and thread count (§7.2).

Paper's claims: one line costs ~100 cycles; 32 KiB ~7460 cycles; eight
threads improve latency ~7.2x; latency scales with size.
"""

import pytest

from repro.bench.micro import run_fig09, rows_by_series
from repro.workloads.sweep import writeback_sweep

KIB = 1024


@pytest.mark.figure(9)
def test_fig09_series(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig09(sizes=[64, KIB, 8 * KIB], threads=[1, 4], repeats=1),
        rounds=1,
        iterations=1,
    )
    series = rows_by_series(rows)
    one = {r.size_bytes: r.median_cycles for r in series["1-thread flush"]}
    four = {r.size_bytes: r.median_cycles for r in series["4-thread flush"]}
    assert_shape(70 <= one[64] <= 140, "single line should cost ~100 cycles")
    assert_shape(one[8 * KIB] > one[KIB] > one[64], "latency grows with size")
    assert_shape(
        four[8 * KIB] < one[8 * KIB] / 2.5,
        "4 threads give near-linear improvement",
    )


@pytest.mark.figure(9)
def test_fig09_full_cache_magnitude(benchmark, assert_shape):
    result = benchmark.pedantic(
        lambda: writeback_sweep(32 * KIB, threads=1, repeats=1),
        rounds=1,
        iterations=1,
    )
    assert_shape(
        3500 <= result.median <= 12_000,
        "32 KiB flush should land in the thousands of cycles (paper: 7460)",
    )


@pytest.mark.figure(9)
def test_fig09_eight_thread_speedup(benchmark, assert_shape):
    def run():
        one = writeback_sweep(32 * KIB, threads=1, repeats=1).median
        eight = writeback_sweep(32 * KIB, threads=8, repeats=1).median
        return one / eight

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(5.0 <= speedup <= 9.0, f"8-thread speedup ~7.2x, got {speedup:.1f}x")
