"""Figure 20: multi-key transactions — fence amortization vs write-set size.

Not a paper figure — the claims under test are the transaction
subsystem's reasons to exist: a transaction is one ticket toward the
epoch trigger whatever its write-set size, so fences per committed
transaction stay flat while the records per fence grow; and the write
set rides one contiguous run whose durability costs one ack wait, paid
in latency that grows with the run.
"""

import pytest

from repro.bench.txn import run_fig20


@pytest.mark.figure(20)
def test_fig20_txn_size_amortizes_the_fence(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig20(
            quick=True,
            optimizers=["plain"],
            txn_sizes=[1, 4, 8],
            duration=30_000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    by_size = {r.txn_size: r for r in rows}
    fpt = {n: r.fences_per_txn for n, r in by_size.items()}
    assert_shape(
        max(fpt.values()) < 2 * min(fpt.values()),
        f"fences per txn stay roughly flat across write-set sizes: {fpt}",
    )
    recs = {n: r.wal_records / max(1, r.committed) for n, r in by_size.items()}
    assert_shape(
        recs[8] > recs[4] > recs[1],
        f"records per committed txn grow with the write set: {recs}",
    )
    ack = {n: r.ack_p50 for n, r in by_size.items()}
    assert_shape(
        ack[8] > ack[1] > 0,
        f"the bigger run is paid in ack latency: {ack}",
    )
    for r in rows:
        assert_shape(
            r.ack_p99 >= r.ack_p50,
            f"txn={r.txn_size}: percentiles ordered",
        )
        assert_shape(
            r.committed > 0 and r.aborted > 0,
            f"txn={r.txn_size}: both outcomes sampled "
            f"({r.committed} committed, {r.aborted} aborted)",
        )


@pytest.mark.figure(20)
def test_fig20_skipit_beats_plain_on_throughput(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig20(
            quick=True,
            optimizers=["plain", "skipit"],
            txn_sizes=[4],
            duration=30_000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    mtps = {r.optimizer: r.throughput_mtps for r in rows}
    assert_shape(
        mtps["skipit"] > mtps["plain"],
        f"skip-it filters the run's redundant cleans: {mtps}",
    )
