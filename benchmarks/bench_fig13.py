"""Figure 13: naive vs Skip It under redundant writebacks (§7.4).

Paper's claim: with one real CBO.X plus ten redundant ones per line,
Skip It is 15-30% faster than the naive flush unit (we measure a larger
gap; see EXPERIMENTS.md), at one and eight threads.
"""

import pytest

from repro.workloads.redundant import redundant_writeback_latency

KIB = 1024


@pytest.mark.figure(13)
def test_fig13_skip_it_vs_naive_one_thread(benchmark, assert_shape):
    def run():
        naive = redundant_writeback_latency(
            2 * KIB, threads=1, skip_it=False, repeats=1
        ).median
        skipit = redundant_writeback_latency(
            2 * KIB, threads=1, skip_it=True, repeats=1
        ).median
        return naive, skipit

    naive, skipit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(skipit < naive * 0.85, f"Skip It wins ({skipit} vs {naive})")


@pytest.mark.figure(13)
def test_fig13_multithreaded(benchmark, assert_shape):
    def run():
        naive = redundant_writeback_latency(
            4 * KIB, threads=4, skip_it=False, repeats=1
        ).median
        skipit = redundant_writeback_latency(
            4 * KIB, threads=4, skip_it=True, repeats=1
        ).median
        return naive, skipit

    naive, skipit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(skipit < naive, "Skip It advantage holds across threads")


@pytest.mark.figure(13)
def test_fig13_advantage_scales_with_redundancy(benchmark, assert_shape):
    def run():
        gaps = {}
        for redundant in (2, 10):
            naive = redundant_writeback_latency(
                KIB, skip_it=False, redundant=redundant, repeats=1
            ).median
            skipit = redundant_writeback_latency(
                KIB, skip_it=True, redundant=redundant, repeats=1
            ).median
            gaps[redundant] = naive - skipit
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_shape(
        gaps[10] > gaps[2], "more redundancy means more Skip It savings"
    )
