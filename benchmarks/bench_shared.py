"""Figure 18: shared-log store — fences/op and ack latency vs threads.

Not a paper figure — the claims under test are the shared subsystem's
reason to exist: one leader fence covers every thread's records, so
fences per op fall as threads share an epoch (where the sharded fig-17
baseline holds them flat), and the price is a cross-thread ack latency
that grows with the epoch the op waits on.
"""

import pytest

from repro.bench.shared import run_fig18
from repro.bench.store import run_fig17


@pytest.mark.figure(18)
def test_fig18_threads_amortize_the_fence(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig18(
            quick=True,
            optimizers=["plain"],
            threads=[1, 2, 4],
            duration=30_000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    fpo = {r.threads: r.fences_per_kop for r in rows}
    assert_shape(
        fpo[1] > 1.5 * fpo[2] > 2 * fpo[4],
        f"fences/op falls roughly with thread count: {fpo}",
    )
    ack = {r.threads: r.ack_p50 for r in rows}
    assert_shape(
        ack[4] > ack[1] > 0,
        f"the amortized fence is paid in ack latency: {ack}",
    )
    for r in rows:
        assert_shape(
            r.ack_p99 >= r.ack_p50,
            f"t={r.threads}: percentiles ordered",
        )


@pytest.mark.figure(18)
def test_fig18_shared_beats_sharded_on_fences(benchmark, assert_shape):
    def run():
        shared = run_fig18(
            quick=True,
            optimizers=["skipit"],
            threads=[4],
            duration=30_000,
            seed=7,
        )
        sharded = run_fig17(
            quick=True,
            optimizers=["skipit"],
            group_commits=[8],
            threads=4,
            duration=30_000,
            seed=7,
        )
        return shared, sharded

    shared, sharded = benchmark.pedantic(run, rounds=1, iterations=1)
    shared_fpo = shared[0].fences * 1000 / shared[0].wal_records
    sharded_fpo = sharded[0].fences * 1000 / sharded[0].wal_records
    assert_shape(
        shared_fpo < sharded_fpo,
        f"shared log fences/krec {shared_fpo:.1f} below sharded "
        f"{sharded_fpo:.1f} at t=4, gc=8",
    )
