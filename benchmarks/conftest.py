"""Shared configuration for the figure benchmarks.

Each ``bench_figNN.py`` wraps the corresponding harness runner from
:mod:`repro.bench` with reduced parameters (so ``pytest benchmarks/
--benchmark-only`` completes in minutes) and asserts the shape properties
the paper's figure reports.  Full-size figures: ``python -m repro.bench``.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(n): benchmark reproduces figure n")


@pytest.fixture
def assert_shape():
    """Readable helper for shape assertions inside benchmarks."""

    def check(condition, message):
        assert condition, f"figure shape violated: {message}"

    return check
