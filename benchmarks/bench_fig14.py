"""Figure 14: persistent data-structure throughput, 5% updates (§7.4).

Paper's claims: Skip It almost always outperforms both FliT variants;
link-and-persist can beat Skip It on the automatic linked list and hash
table; plain is far below every filter under the automatic policy; the
non-persistent baseline is generally the upper envelope; BST x L&P is
excluded.
"""

import pytest

from repro.bench.structures import run_fig14


@pytest.mark.figure(14)
def test_fig14_hashtable_automatic(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig14(
            quick=True,
            structures=["hashtable"],
            policies=["automatic"],
            duration=80_000,
        ),
        rounds=1,
        iterations=1,
    )
    tp = {r.optimizer: r.throughput_mops for r in rows if r.policy == "automatic"}
    assert_shape(tp["skipit"] > tp["plain"] * 2, "Skip It far above plain")
    assert_shape(
        tp["skipit"] >= tp["flit-hashtable"] * 0.95,
        "Skip It at least matches FliT hash table",
    )
    assert_shape(
        tp["link-and-persist"] >= tp["skipit"] * 0.8,
        "L&P is competitive on the hash table (paper: it can win)",
    )


@pytest.mark.figure(14)
def test_fig14_list_automatic(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig14(
            quick=True,
            structures=["list"],
            policies=["automatic"],
            duration=60_000,
        ),
        rounds=1,
        iterations=1,
    )
    tp = {r.optimizer: r.throughput_mops for r in rows if r.policy == "automatic"}
    baseline = next(r for r in rows if r.policy == "none").throughput_mops
    assert_shape(tp["plain"] < tp["skipit"] / 3, "plain automatic list is dire")
    assert_shape(
        tp["link-and-persist"] >= tp["skipit"],
        "L&P wins the automatic linked list (paper observation)",
    )
    assert_shape(
        baseline >= tp["skipit"],
        "non-persistent baseline bounds persistent throughput here",
    )


@pytest.mark.figure(14)
def test_fig14_bst_excludes_lnp(benchmark, assert_shape):
    rows = benchmark.pedantic(
        lambda: run_fig14(
            quick=True,
            structures=["bst"],
            policies=["manual"],
            optimizers=["plain", "link-and-persist", "skipit"],
            duration=40_000,
        ),
        rounds=1,
        iterations=1,
    )
    lnp = next(r for r in rows if r.optimizer == "link-and-persist")
    assert_shape(lnp.throughput_mops is None, "BST x link-and-persist excluded")
    skipit = next(r for r in rows if r.optimizer == "skipit")
    assert_shape(skipit.throughput_mops > 0, "Skip It works on the BST")


@pytest.mark.figure(14)
def test_fig14_policy_ordering(benchmark, assert_shape):
    """Manual persistence costs least, automatic most (for one filter)."""
    rows = benchmark.pedantic(
        lambda: run_fig14(
            quick=True,
            structures=["skiplist"],
            policies=["automatic", "nvtraverse", "manual"],
            optimizers=["skipit"],
            duration=60_000,
        ),
        rounds=1,
        iterations=1,
    )
    tp = {r.policy: r.throughput_mops for r in rows if r.policy != "none"}
    assert_shape(
        tp["manual"] >= tp["nvtraverse"] >= tp["automatic"] * 0.9,
        f"policy cost ordering manual >= nvtraverse >= automatic: {tp}",
    )
