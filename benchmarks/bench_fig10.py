"""Figure 10: write / 10x CBO.X / fence / re-read (§7.2).

Paper's claim: re-reading after CBO.CLEAN is ~2x faster than after
CBO.FLUSH because the clean leaves the line resident.
"""

import pytest

from repro.workloads.reread import clean_vs_flush_reread


@pytest.mark.figure(10)
def test_fig10_clean_vs_flush(benchmark, assert_shape):
    def run():
        clean = clean_vs_flush_reread(1024, clean=True, repeats=1).median
        flush = clean_vs_flush_reread(1024, clean=False, repeats=1).median
        return clean, flush

    clean, flush = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = flush / clean
    assert_shape(1.5 <= ratio <= 4.0, f"flush/clean reread ratio ~2x, got {ratio:.2f}")


@pytest.mark.figure(10)
def test_fig10_shape_holds_across_threads(benchmark, assert_shape):
    def run():
        results = {}
        for threads in (1, 2):
            clean = clean_vs_flush_reread(
                1024, threads=threads, clean=True, repeats=1
            ).median
            flush = clean_vs_flush_reread(
                1024, threads=threads, clean=False, repeats=1
            ).median
            results[threads] = flush / clean
        return results

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for threads, ratio in ratios.items():
        assert_shape(
            ratio > 1.4, f"clean advantage persists at {threads} threads"
        )
