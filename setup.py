"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only enables
legacy editable installs (`pip install -e . --no-build-isolation`) on
offline machines whose setuptools cannot build PEP 517 editable wheels.
"""
from setuptools import setup

setup()
